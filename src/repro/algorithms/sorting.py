"""Sorting — Table 1, row 5.

The paper sorts by routing the keys to a small set of processors and running
the Adler–Byers–Karp adaptation of Leighton's **columnsort**; when
``m = O(n^{1-eps})`` the time is within a constant of routing a balanced
permutation: ``Θ(n/m)`` on QSM(m), ``Θ(n/m + L)`` on BSP(m).

We implement columnsort itself, both as a host-side reference
(:func:`columnsort_reference`) and as an engine program
(:func:`columnsort`): ``s`` sorter processors each own one column of an
``r × s`` matrix (``r >= 2(s-1)^2``, ``s | r``); the eight steps alternate
local column sorts with fixed global permutations (transpose, untranspose,
shift, unshift), each permutation moving all ``n`` keys through the network
in ``n/s`` staggered slots.

**Substitution note** (recorded in DESIGN.md): the paper uses ``m lg n``
sorter processors with a recursive columnsort to absorb the local-sort
``lg`` factor and reach ``O(n/m)`` total; we use ``s = min(m, (n/2)^{1/3})``
columns and a single columnsort level, so the *communication* term is the
paper's ``Θ(n/m)`` exactly while local work carries an extra ``lg`` factor.
The benchmark separates the two components via the run's cost breakdown.

The locally-limited machine runs the *same program*; each permutation then
costs ``g·(n/s)`` instead of ``n/s`` — a clean ``Θ(g)`` separation on the
communication term.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import Machine, RunResult
from repro.util.intmath import ceil_div
from repro.util.validation import check_positive

__all__ = [
    "columnsort",
    "columnsort_reference",
    "choose_columns",
    "local_sort_work",
]

_NEG = -np.inf
_POS = np.inf


def local_sort_work(k: int) -> float:
    """Comparison-sort work charge ``k * max(1, lg k)``."""
    if k <= 0:
        return 0.0
    return k * max(1.0, math.log2(k))


def choose_columns(n: int, limit: Optional[int]) -> Tuple[int, int]:
    """Pick ``(r, s)`` for columnsort: the largest ``s <= limit`` with
    ``r = s * ceil(n / s^2)`` satisfying Leighton's ``r >= 2(s-1)^2``
    (``s | r`` holds by construction).  ``limit`` is ``m`` on a
    globally-limited machine."""
    check_positive("n", n)
    cap = limit if limit is not None else n
    s = max(1, min(cap, int(round((n / 2) ** (1.0 / 3.0)))))
    while s > 1:
        r = s * ceil_div(n, s * s)
        if r >= 2 * (s - 1) ** 2 and r * s >= n:
            return r, s
        s -= 1
    return n, 1


def _sort_columns(mat: np.ndarray) -> np.ndarray:
    return np.sort(mat, axis=0)


def columnsort_reference(keys: Sequence[float], r: int, s: int) -> np.ndarray:
    """Host-side columnsort over an ``r x s`` matrix (column-major layout).

    Requires ``r * s >= len(keys)``, ``s | r`` and ``r >= 2(s-1)^2``; pads
    with ``+inf`` and strips the pads from the sorted output.  Used as the
    oracle for the engine program and as a standalone PRAM-style reference.
    """
    keys = np.asarray(keys, dtype=np.float64)
    n = keys.size
    if r * s < n:
        raise ValueError(f"matrix {r}x{s} too small for {n} keys")
    if s > 1 and r % s != 0:
        raise ValueError(f"columnsort needs s | r, got r={r}, s={s}")
    if s > 1 and r < 2 * (s - 1) ** 2:
        raise ValueError(f"columnsort needs r >= 2(s-1)^2, got r={r}, s={s}")
    flat = np.concatenate([keys, np.full(r * s - n, _POS)])
    mat = flat.reshape(s, r).T  # column j = flat[j*r:(j+1)*r]

    mat = _sort_columns(mat)  # 1
    mat = mat.T.reshape(r, s)  # 2: read column-major, write row-major
    mat = _sort_columns(mat)  # 3
    mat = mat.reshape(s, r).T  # 4: inverse of 2
    mat = _sort_columns(mat)  # 5
    shift = r // 2
    flat6 = np.concatenate(
        [np.full(shift, _NEG), mat.T.ravel(), np.full(r - shift, _POS)]
    )  # 6: shift down by r/2 into s+1 columns
    mat7 = flat6.reshape(s + 1, r).T
    mat7 = _sort_columns(mat7)  # 7
    flat8 = mat7.T.ravel()[shift : shift + r * s]  # 8: unshift
    out = flat8[flat8 != _POS]
    if out.size != n:
        # keys may legitimately be +inf; fall back to length-based strip
        out = flat8[:n] if np.all(flat8[n:] == _POS) else flat8
    return out


# ----------------------------------------------------------------------
# Engine program
# ----------------------------------------------------------------------


def _columnsort_program(ctx, n: int, r: int, s: int, m_cap: int, per: int, chunk: List[float]):
    """SPMD columnsort: procs ``0..s-1`` own columns, proc ``s`` owns the
    shift-overflow column, everyone initially holds ``chunk`` of the input.

    Slot discipline: distribution is staggered ``p``-wide (slot =
    ``k*ceil(p/cap) + pid//cap``); the permutation steps have only
    ``s+1 <= cap`` senders, so the ``k``-th outgoing flit simply uses slot
    ``k``.

    Every permutation travels as one ``send_many`` whose payload column is
    a ``(count, 2)`` float array of ``(dest_row, key)`` pairs — the column
    stays array-backed through delivery, and receivers scatter it into
    their column with one fancy-indexed assignment.  Rows are exact in
    float64 (``r << 2**53``).
    """
    pid, p = ctx.pid, ctx.nprocs
    groups = ceil_div(p, m_cap)

    def send_pairs(dests: np.ndarray, dest_rows: np.ndarray, keys: np.ndarray,
                   slots: np.ndarray) -> None:
        if len(dests):
            ctx.send_many(
                dests,
                payloads=np.column_stack(
                    [np.asarray(dest_rows, dtype=np.float64),
                     np.asarray(keys, dtype=np.float64)]
                ),
                slots=slots,
            )

    def fill(base: np.ndarray) -> np.ndarray:
        pairs = ctx.receive().payloads
        if len(pairs):
            arr = np.asarray(pairs)
            base[arr[:, 0].astype(np.int64)] = arr[:, 1]
        return base

    # ---- distribute: global index -> column (index // r) ----
    offset = pid * per
    nc = len(chunk)
    if nc:
        g = offset + np.arange(nc, dtype=np.int64)
        send_pairs(
            g // r, g % r, np.asarray(chunk, dtype=np.float64),
            np.arange(nc, dtype=np.int64) * groups + pid // m_cap,
        )
    yield

    col = np.full(r, _POS)
    if pid < s:
        col = fill(col)
    elif pid == s:
        ctx.receive()

    def sortcol():
        nonlocal col
        col = np.sort(col)
        ctx.work(local_sort_work(r))

    rows = np.arange(r)

    def permute(dest_cols: np.ndarray, dest_rows: np.ndarray):
        send_pairs(dest_cols, dest_rows, col, rows)

    # ---- step 1 + 2 ----
    if pid < s:
        sortcol()
        kidx = pid * r + rows  # column-major linear indices
        dc, dr = kidx % s, kidx // s
        permute(dc, dr)
    yield
    if pid < s:
        col = fill(np.full(r, _POS))

    # ---- step 3 + 4 ----
    if pid < s:
        sortcol()
        k2 = rows * s + pid  # row-major linear indices of my entries
        dc, dr = k2 // r, k2 % r
        permute(dc, dr)
    yield
    if pid < s:
        col = fill(np.full(r, _POS))

    # ---- step 5 + 6 (shift into s+1 columns) ----
    shift = r // 2
    if pid < s:
        sortcol()
        kidx = pid * r + rows + shift
        dc, dr = kidx // r, kidx % r
        permute(dc, dr)
    yield
    if pid <= s:
        base = np.full(r, _POS if pid else _NEG)
        if pid == 0:
            base[shift:] = _POS  # only rows [0, shift) are -inf pads
            base[:shift] = _NEG
        col = fill(base)

    # ---- step 7 + 8 (unshift) ----
    if pid <= s:
        sortcol()
        kidx = pid * r + rows - shift
        valid = (kidx >= 0) & (kidx < r * s)
        vk = kidx[valid]
        send_pairs(vk // r, vk % r, col[valid], rows[valid])
    yield
    sorted_col = None
    if pid < s:
        sorted_col = fill(np.full(r, _POS))

    # ---- collect: route to final owners, n/p keys each ----
    per_proc = ceil_div(n, p)
    if pid < s:
        g = pid * r + rows  # global sorted positions (column-major)
        sel = g < n
        gs = g[sel]
        send_pairs(gs // per_proc, gs % per_proc, sorted_col[sel], rows[sel])
    yield
    mine = np.full(per_proc, _POS)
    got = np.zeros(per_proc, dtype=bool)
    pairs = ctx.receive().payloads
    if len(pairs):
        arr = np.asarray(pairs)
        idx = arr[:, 0].astype(np.int64)
        mine[idx] = arr[:, 1]
        got[idx] = True
    return mine[got].tolist()


def _columnsort_qsm_program(ctx, n: int, r: int, s: int, m_cap: int, per: int, chunk: List[float]):
    """Shared-memory columnsort: identical step structure to the BSP
    program, but every permutation is a write phase (cells keyed by the
    *destination* position, which is a fixed function of the step) followed
    by a read phase in which each sorter reads its column's ``r`` cells.

    Slot discipline mirrors the BSP program: distribution is staggered
    ``p``-wide, permutation phases have at most ``s+1 <= cap`` requesters
    per slot index.

    Each phase's requests go out as one ``read_many``/``write_many`` batch
    (tuple addresses, so the address column is a list — the batching still
    collapses the per-request engine overhead to one call per phase).
    """
    pid, p = ctx.pid, ctx.nprocs
    groups = ceil_div(p, m_cap)

    # ---- distribute ----
    offset = pid * per
    nc = len(chunk)
    if nc:
        g = offset + np.arange(nc, dtype=np.int64)
        ctx.write_many(
            [("cs", 0, int(gg) // r, int(gg) % r) for gg in g],
            np.asarray(chunk, dtype=np.float64),
            slots=np.arange(nc, dtype=np.int64) * groups + pid // m_cap,
        )
    yield

    rows = np.arange(r)

    def read_column(step: int):
        return ctx.read_many(
            [("cs", step, pid, row) for row in range(r)], slots=rows
        )

    def fill(handle, base: np.ndarray) -> np.ndarray:
        # unwritten cells read back None and keep the pad value
        for row, v in enumerate(handle.values):
            if v is not None:
                base[row] = v
        return base

    col = np.full(r, _POS)
    handle = read_column(0) if pid < s else None
    yield
    if pid < s:
        col = fill(handle, col)

    def sortcol():
        nonlocal col
        col = np.sort(col)
        ctx.work(local_sort_work(r))

    def write_perm(step: int, dest_cols, dest_rows, valid=None):
        # Slot = source row index: in the unshift step columns 0 and s have
        # complementary valid row ranges, so using the (uncompacted) row
        # keeps every slot at <= s concurrent writers.
        sel = rows if valid is None else rows[np.asarray(valid, dtype=bool)]
        dc = np.asarray(dest_cols, dtype=np.int64)
        dr = np.asarray(dest_rows, dtype=np.int64)
        ctx.write_many(
            [("cs", step, int(dc[k]), int(dr[k])) for k in sel],
            col[sel],
            slots=sel,
        )

    # ---- step 1 + 2 (transpose) ----
    if pid < s:
        sortcol()
        kidx = pid * r + rows
        write_perm(2, kidx % s, kidx // s)
    yield
    handle = read_column(2) if pid < s else None
    yield
    if pid < s:
        col = fill(handle, np.full(r, _POS))

    # ---- step 3 + 4 (untranspose) ----
    if pid < s:
        sortcol()
        k2 = rows * s + pid
        write_perm(4, k2 // r, k2 % r)
    yield
    handle = read_column(4) if pid < s else None
    yield
    if pid < s:
        col = fill(handle, np.full(r, _POS))

    # ---- step 5 + 6 (shift into s+1 columns) ----
    shift = r // 2
    if pid < s:
        sortcol()
        kidx = pid * r + rows + shift
        write_perm(6, kidx // r, kidx % r)
    yield
    handle = read_column(6) if pid <= s else None
    yield
    if pid <= s:
        base = np.full(r, _POS if pid else _NEG)
        if pid == 0:
            base[shift:] = _POS
            base[:shift] = _NEG
        col = fill(handle, base)

    # ---- step 7 + 8 (unshift) ----
    if pid <= s:
        sortcol()
        kidx = pid * r + rows - shift
        valid = (kidx >= 0) & (kidx < r * s)
        write_perm(8, np.where(valid, kidx // r, 0), np.where(valid, kidx % r, 0), valid)
    yield
    handle = read_column(8) if pid < s else None
    yield
    sorted_col = None
    if pid < s:
        sorted_col = fill(handle, np.full(r, _POS))

    # ---- collect ----
    per_proc = ceil_div(n, p)
    if pid < s:
        g = pid * r + rows
        gs = g[g < n]  # compacted: the k-th valid write uses slot k
        ctx.write_many(
            [("out", int(gg) // per_proc, int(gg) % per_proc) for gg in gs],
            sorted_col[rows[g < n]],
            slots=np.arange(gs.size, dtype=np.int64),
        )
    yield
    mine_idx = [j for j in range(per_proc) if pid * per_proc + j < n]
    out_handle = ctx.read_many(
        [("out", pid, j) for j in mine_idx],
        slots=ctx.stagger_slots(len(mine_idx)),
    )
    yield
    return [v for v in out_handle.values if v is not None]


def columnsort(
    machine: Machine,
    keys: Sequence[float],
    columns: Optional[int] = None,
) -> Tuple[RunResult, np.ndarray]:
    """Sort ``keys`` with columnsort on any of the four machine models.

    Returns ``(run_result, sorted_keys)``; processor ``i``'s final block is
    ``result.results[i]``.  Keys must be finite floats (``±inf`` are the
    pad sentinels).  On QSM machines the permutations move through shared
    memory (write phase + read phase); on BSP machines they are
    point-to-point messages — same structure, same Θ(n/m) communication.
    """
    keys = np.asarray(keys, dtype=np.float64)
    if keys.size and not np.all(np.isfinite(keys)):
        raise ValueError("keys must be finite (±inf are reserved as pads)")
    n = keys.size
    p = machine.params.p
    m = machine.params.m
    cap = m if m is not None else p
    if columns is not None:
        s = columns
        r = s * ceil_div(n, s * s) if s > 1 else n
    else:
        # QSM phases have s+1 active requesters (the shift-overflow column
        # reads/writes too), so keep s+1 <= m there; BSP permutation steps
        # never have more than s concurrent senders per slot.
        limit = cap - 1 if machine.uses_shared_memory else cap
        r, s = choose_columns(n, min(max(1, limit), p - 1) if p > 1 else 1)
    if s + 1 > p and s > 1:
        raise ValueError(f"columnsort with s={s} needs at least s+1={s+1} processors")
    if s == 1:
        # Degenerate single-column case: local sort on processor 0.
        def _seq(ctx, data):
            if ctx.pid == 0:
                ctx.work(local_sort_work(len(data)))
            yield
            return sorted(data) if ctx.pid == 0 else []

        res = machine.run(_seq, args=(list(map(float, keys)),))
        return res, np.asarray(res.results[0], dtype=np.float64)

    per_proc = ceil_div(n, p)
    chunks = [
        [float(x) for x in keys[i * per_proc : (i + 1) * per_proc]] for i in range(p)
    ]
    program = _columnsort_qsm_program if machine.uses_shared_memory else _columnsort_program
    res = machine.run(
        program,
        args=(n, r, s, cap, per_proc),
        per_proc_args=[(c,) for c in chunks],
    )
    out: List[float] = []
    for block in res.results:
        if block:
            out.extend(block)
    return res, np.asarray(out, dtype=np.float64)
