"""Leader Recognition (Definition 5.1) — the problem separating CR from
ER/QR under global bandwidth limits.

Input: ``p`` memory locations, exactly one holding 1; output: every
processor learns the address of the 1.

* On the CRCW PRAM(m), the input sits in the free concurrently-readable
  ROM, so every processor reads a distinct cell in one step, the finder
  publishes its address in ``ceil(lg p / w)`` shared cells (one write per
  step for ``w``-bit cells), and everyone reads them back concurrently:
  time ``O(max(lg p / w, 1))``.

* On the QSM(m) the same information must squeeze through the aggregate
  bandwidth: Lemma 5.3 proves ``Ω(p lg m / (2 m w))`` *even if every
  processor knows the entire input in advance*.  Our upper bound
  (:func:`leader_recognition_qsm_m`) reads the input at full bandwidth
  (``p/m``), doubles the answer through ``lg m`` exclusive-read rounds and
  fans out with one concurrent read — ``O(p/m + lg m)``, matching the lower
  bound up to the ``lg m / w`` factor.

The measured gap between the two machines reproduces the
``Ω(p lg m / (m lg p))`` ER-vs-CR separation highlighted in the abstract.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.engine import RunResult
from repro.core.params import MachineParams
from repro.models.pram_m import PRAMm
from repro.models.qsm_m import QSMm
from repro.util.intmath import ceil_div, ilog2

__all__ = [
    "leader_recognition_pramm",
    "leader_recognition_qsm_m",
    "make_leader_input",
    "pramm_summation",
]


def make_leader_input(p: int, leader: int) -> List[int]:
    """The Definition 5.1 input: ``p`` cells, one 1 at ``leader``."""
    if not (0 <= leader < p):
        raise ValueError(f"leader {leader} out of range for {p} cells")
    rom = [0] * p
    rom[leader] = 1
    return rom


def _pramm_program(ctx, rom, chunks: int, w: int):
    """CRCW PRAM(m) program; every processor returns the leader address."""
    pid, p = ctx.pid, ctx.nprocs
    found = rom[pid] == 1
    # The finder publishes its address in w-bit chunks, one shared cell per
    # step (a processor writes at most one cell per PRAM step).
    for c in range(chunks):
        if found:
            ctx.write(c, (pid >> (c * w)) & ((1 << w) - 1))
        yield
    handles = []
    for c in range(chunks):
        handles.append(ctx.read(c))
        yield
    addr = 0
    for c, h in enumerate(handles):
        addr |= (h.value or 0) << (c * w)
    return addr


def leader_recognition_pramm(
    p: int, leader: int, m: Optional[int] = None, w: int = 64
) -> Tuple[RunResult, List[int]]:
    """Solve Leader Recognition on a CRCW PRAM(m).

    Returns ``(run_result, answers)``; ``run_result.time`` is
    ``O(max(lg p / w, 1))`` PRAM steps.
    """
    chunks = max(1, ceil_div(max(1, ilog2(max(p, 2)) + 1), w))
    m_eff = m if m is not None else max(1, chunks)
    if m_eff < chunks:
        raise ValueError(f"need m >= {chunks} shared cells for the address chunks")
    machine = PRAMm(MachineParams(p=p, m=m_eff, word_bits=w))
    rom = make_leader_input(p, leader)
    res = machine.run(_pramm_program, rom=rom, args=(chunks, w))
    return res, list(res.results)


def _qsm_m_program(ctx, a: int):
    """QSM(m) program; the input occupies shared cells ``("in", i)``."""
    pid, p = ctx.pid, ctx.nprocs
    # Phase 1: full-bandwidth scan — processor i reads its own input cell.
    h_in = ctx.read(("in", pid), slot=ctx.stagger_slot())
    yield
    addr = None
    if h_in.value == 1:
        ctx.write(("ldr", 0), pid, slot=ctx.stagger_slot())
        addr = pid
    yield
    # Phase 2: exclusive-read doubling over the first a processors.
    span = 1
    while span < a:
        handle = None
        if pid < min(2 * span, a) and addr is None:
            handle = ctx.read(("ldr", pid % span), slot=ctx.stagger_slot())
        yield
        if handle is not None and handle.value is not None:
            addr = handle.value
        if pid < min(2 * span, a) and addr is not None:
            ctx.write(("ldr", pid), addr, slot=ctx.stagger_slot())
        yield
        span *= 2
    # Phase 3: concurrent-read fan-out (contention ceil(p/a)).
    handle = None
    if pid >= a:
        handle = ctx.read(("ldr", pid % a), slot=ctx.stagger_slot())
    yield
    if handle is not None:
        addr = handle.value
    return addr


def leader_recognition_qsm_m(
    p: int, leader: int, m: int, L: float = 1.0
) -> Tuple[RunResult, List[int]]:
    """Solve Leader Recognition on the QSM(m) in ``O(p/m + lg m)``.

    The finder's write lands in a well-known cell; phase 2 may read it
    before it is written for processors far from the finder, which is why
    the doubling re-reads until a value appears — processors that read
    ``None`` keep their ``addr`` unset and pick it up in a later round (the
    doubling invariant guarantees cells ``("ldr", 0..span)`` are written
    after round ``lg span``).
    """
    machine = QSMm(MachineParams(p=p, m=m, L=L))
    for i, bit in enumerate(make_leader_input(p, leader)):
        machine.shared_memory[("in", i)] = bit
    a = min(p, m)
    res = machine.run(_qsm_m_program, args=(a,))
    return res, list(res.results)


def _pramm_summation_program(ctx, rom, m: int, group_size: int):
    """Sum the ROM on a CRCW PRAM(m) with only ``m`` shared cells.

    The paper notes that "algorithm design for the PRAM(m) is complicated
    by the fact that there are only m shared memory locations."  This
    program shows the standard shape: group ``j``'s members take turns
    folding their (free) ROM reads into cell ``j`` — ``p/m`` sequential
    steps — then a binary tree combines the ``m`` partial sums in ``lg m``
    steps, landing the total in cell 0.  Time ``O(p/m + lg m)``.
    """
    pid, p = ctx.pid, ctx.nprocs
    group = pid % m
    rank = pid // m  # my turn within the group

    my_value = rom[pid] if pid < len(rom) else 0

    # --- phase 1: sequential accumulation into cell `group` ---
    for turn in range(group_size):
        handle = ctx.read(group) if rank == turn else None
        yield
        if handle is not None:
            current = handle.value or 0
            ctx.write(group, current + my_value)
        yield

    # --- phase 2: binary tree over the m cells ---
    stride = 1
    while stride < m:
        handle = None
        if pid < m and pid % (2 * stride) == 0 and pid + stride < m:
            handle = ctx.read(pid + stride)
        yield
        mine = None
        if handle is not None:
            mine = handle.value or 0
        handle2 = ctx.read(pid) if mine is not None else None
        yield
        if handle2 is not None:
            ctx.write(pid, (handle2.value or 0) + mine)
        yield
        stride *= 2

    out = ctx.read(0)
    yield
    return out.value


def pramm_summation(rom: Sequence[float], p: int, m: int) -> Tuple[RunResult, float]:
    """Sum ``rom`` on a CRCW PRAM(m) (``p`` processors, ``m`` cells) in
    ``O(p/m + lg m)`` steps.  Returns ``(run_result, total)``; every
    processor knows the answer."""
    if m < 1:
        raise ValueError("need at least one shared cell")
    machine = PRAMm(MachineParams(p=p, m=m))
    group_size = ceil_div(p, m)
    res = machine.run(_pramm_summation_program, rom=list(rom), args=(m, group_size))
    return res, res.results[0]
