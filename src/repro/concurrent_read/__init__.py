"""Section 5: the power of concurrent read under limited bandwidth."""

from repro.concurrent_read.leader import (
    leader_recognition_pramm,
    leader_recognition_qsm_m,
    make_leader_input,
    pramm_summation,
)
from repro.concurrent_read.simulation import (
    simulate_concurrent_read_step,
    concurrent_read_program,
    simulate_concurrent_write_step,
    concurrent_write_program,
)

__all__ = [
    "leader_recognition_pramm",
    "leader_recognition_qsm_m",
    "make_leader_input",
    "pramm_summation",
    "simulate_concurrent_read_step",
    "concurrent_read_program",
    "simulate_concurrent_write_step",
    "concurrent_write_program",
]
