"""Theorem 5.1 — simulating a CRCW PRAM(m) read step on the QSM(m).

The standard EREW simulation of concurrent reads is not optimal under
aggregate bandwidth; the paper's algorithm distributes the values of hot
locations through a *sorted* array and ``p/m`` "central read steps":

1. every processor ``i`` publishes the pair ``(addr_i, i)``;
2. the pairs are sorted by address — the paper uses the Adler–Byers–Karp
   columnsort, we use a bitonic network (**substitution**, documented in
   DESIGN.md: identical ``Θ(p/m)`` traffic per round, ``lg^2 p`` rounds
   instead of O(1) columnsort passes; the central-read machinery, which is
   the theorem's novel part, is reproduced exactly);
3. ``m`` designated processors (one per block of ``p/m`` sorted ranks) read
   their block-leading address directly and publish ``(addr, value)`` in a
   cache array ``C``;
4. ``p/m`` *central read steps*: in step ``j``, the processor holding
   sorted rank ``i ≡ j (mod p/m)`` reads its block's cache entry; on an
   address match it is done, otherwise it reads memory directly — and the
   sortedness argument of the paper guarantees at most one direct reader
   per memory cell per step (reproduced in
   ``tests/test_concurrent_read.py`` as a property);
5. values are routed back to the requesting processors.

:func:`simulate_concurrent_read_step` runs the whole thing on the QSM(m)
engine and returns the fetched values plus the run record, so the benchmark
can verify the ``O(p/m)`` slowdown (modulo the sorting substitution, whose
cost is reported separately).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.core.engine import RunResult
from repro.core.params import MachineParams
from repro.models.qsm_m import QSMm
from repro.util.intmath import ceil_div, next_pow2

__all__ = [
    "simulate_concurrent_read_step",
    "concurrent_read_program",
    "simulate_concurrent_write_step",
    "concurrent_write_program",
]

_INF = float("inf")


def concurrent_read_program(ctx, q: int, addr: int):
    """QSM(m) SPMD program fetching ``memory[addr]`` for every processor.

    ``q = ceil(p/m)`` is the block size / number of central read steps.
    ``p`` must be a power of two (bitonic network); memory cells live at
    ``("M", x)`` in shared memory.
    """
    pid, p = ctx.pid, ctx.nprocs

    # ---- step 1+2: bitonic sort of (addr, pid) pairs by address ----
    pair = (addr, pid)
    k = 2
    while k <= p:
        j = k // 2
        while j >= 1:
            ctx.write(("bt", k, j, pid), pair, slot=ctx.stagger_slot())
            yield
            partner = pid ^ j
            h = ctx.read(("bt", k, j, partner), slot=ctx.stagger_slot())
            yield
            other = h.value
            ascending = (pid & k) == 0
            if (pid & j) == 0:
                keep_small = ascending
            else:
                keep_small = not ascending
            if other is not None:
                lo, hi = (pair, other) if pair <= other else (other, pair)
                pair = lo if keep_small else hi
            j //= 2
        k *= 2

    a_sorted, orig = pair

    # ---- step 3: designated processors fill the cache array C ----
    # Only m designated readers (one per block) are active, so they all
    # share slot 0 — staggering by pid//m here would stretch one phase to
    # p/m idle slots.
    handle = None
    if pid % q == 0:
        handle = ctx.read(("M", a_sorted), slot=0)
    yield
    if handle is not None:
        ctx.write(("C", pid // q), (a_sorted, handle.value), slot=0)
    yield

    # ---- step 4: central read steps ----
    value = None
    have = pid % q == 0 and handle is not None
    if have:
        value = handle.value
    for j in range(q):
        # In step j exactly one processor per block is active (at most m in
        # total), so slot 0 suffices for both the cache read and the
        # fall-back direct read.
        ch = None
        if pid % q == j and not have:
            ch = ctx.read(("C", pid // q), slot=0)
        yield
        direct = None
        if ch is not None:
            cached_addr, cached_val = ch.value
            if cached_addr == a_sorted:
                value = cached_val
                have = True
            else:
                direct = ctx.read(("M", a_sorted), slot=0)
        yield
        if direct is not None:
            value = direct.value
            have = True

    # ---- step 5: route values back to the requesting processors ----
    ctx.write(("ans", orig), value, slot=ctx.stagger_slot())
    yield
    back = ctx.read(("ans", pid), slot=ctx.stagger_slot())
    yield
    return back.value


def simulate_concurrent_read_step(
    p: int,
    m: int,
    addresses: Sequence[int],
    memory: Dict[int, Any],
    L: float = 1.0,
) -> Tuple[RunResult, List[Any]]:
    """Fetch ``memory[addresses[i]]`` for each processor ``i`` on a QSM(m).

    ``p`` must be a power of two.  Returns ``(run_result, values)``;
    correctness is ``values[i] == memory[addresses[i]]``.
    """
    if p != next_pow2(p):
        raise ValueError(f"p must be a power of two for the bitonic stage, got {p}")
    if len(addresses) != p:
        raise ValueError(f"{len(addresses)} addresses for {p} processors")
    machine = QSMm(MachineParams(p=p, m=m, L=L))
    for x, v in memory.items():
        machine.shared_memory[("M", x)] = v
    q = ceil_div(p, min(p, m))
    res = machine.run(
        concurrent_read_program,
        args=(q,),
        per_proc_args=[(int(a),) for a in addresses],
    )
    return res, list(res.results)


def concurrent_write_program(ctx, addr: int, value):
    """QSM(m) SPMD program performing a concurrent-write step: every
    processor wants ``memory[addr] = value``; duplicates are removed by
    sorting (the paper: "sorting the keys allows us to remove duplicates of
    locations that are accessed in the case of writes") and one
    representative per address performs the actual write (Arbitrary:
    the representative is the sorted run's leader, i.e. the *minimum*
    requester id for each address).
    """
    pid, p = ctx.pid, ctx.nprocs

    # bitonic sort of (addr, pid) pairs — identical to the read simulation
    pair = (addr, pid)
    k = 2
    while k <= p:
        j = k // 2
        while j >= 1:
            ctx.write(("bw", k, j, pid), pair, slot=ctx.stagger_slot())
            yield
            partner = pid ^ j
            h = ctx.read(("bw", k, j, partner), slot=ctx.stagger_slot())
            yield
            other = h.value
            ascending = (pid & k) == 0
            keep_small = ascending if (pid & j) == 0 else not ascending
            if other is not None:
                lo, hi = (pair, other) if pair <= other else (other, pair)
                pair = lo if keep_small else hi
            j //= 2
        k *= 2

    a_sorted, orig = pair

    # publish my sorted pair so my right neighbour can compare addresses
    ctx.write(("srt", pid), pair, slot=ctx.stagger_slot())
    yield
    left = None
    if pid > 0:
        left = ctx.read(("srt", pid - 1), slot=ctx.stagger_slot())
    yield
    is_leader = pid == 0 or (left is not None and left.value[0] != a_sorted)

    # the leader of each run needs the *value* of the original requester it
    # represents; fetch it from the requester's value cell
    vh = None
    if is_leader:
        vh = ctx.read(("wval", orig), slot=ctx.stagger_slot())
    yield
    if is_leader and vh is not None:
        ctx.write(("M", a_sorted), vh.value, slot=ctx.stagger_slot())
    yield
    return is_leader


def simulate_concurrent_write_step(
    p: int,
    m: int,
    addresses: Sequence[int],
    values: Sequence[Any],
    memory: Dict[int, Any],
    L: float = 1.0,
) -> Tuple[RunResult, Dict[int, Any]]:
    """Perform ``memory[addresses[i]] = values[i]`` for every processor on a
    QSM(m) — the concurrent-*write* half of Theorem 5.1.

    Exactly one write reaches each distinct address (the minimum requester
    id in the sorted order — an admissible Arbitrary resolution), so the
    QSM's no-mixed-access and bandwidth disciplines are both respected.
    Returns ``(run_result, final_memory)``.
    """
    if p != next_pow2(p):
        raise ValueError(f"p must be a power of two for the bitonic stage, got {p}")
    if len(addresses) != p or len(values) != p:
        raise ValueError(f"need exactly {p} addresses and values")
    machine = QSMm(MachineParams(p=p, m=m, L=L))
    for x, v in memory.items():
        machine.shared_memory[("M", x)] = v
    for i, v in enumerate(values):
        machine.shared_memory[("wval", i)] = v
    res = machine.run(
        concurrent_write_program,
        per_proc_args=[(int(a), values[i]) for i, a in enumerate(addresses)],
    )
    final = {}
    for key, v in machine.shared_memory.items():
        if isinstance(key, tuple) and len(key) == 2 and key[0] == "M":
            final[key[1]] = v
    return res, final
