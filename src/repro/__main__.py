"""Entry point: ``python -m repro <command>`` (see :mod:`repro.harness`)."""

import sys

from repro.harness import main

if __name__ == "__main__":
    sys.exit(main())
