"""One point of the cluster scaling curve: run the scaling workload on
one backend at one worker/rank count and append a JSON line.

This is the unit ``run_cluster_scaling.sh`` loops over — separated out
because the ``mpi`` backend's worker count is decided by the *launcher*
(``mpirun -n R``), not by a function argument, so each rank count needs
its own process tree::

    # local backends
    PYTHONPATH=src python benchmarks/run_scaling_step.py \
        --backend pool-steal --jobs 4 --out scaling.jsonl

    # mpi (R-1 worker ranks serve; rank 0 coordinates and appends)
    PYTHONPATH=src mpirun -n 5 python benchmarks/run_scaling_step.py \
        --backend mpi --out scaling.jsonl

Under MPI only rank 0 gets a result (the others receive ``None`` from
the experiment and exit 0 silently), so exactly one line is appended per
invocation regardless of rank count.  Each line carries the backend,
job/rank count, cores, hostname, elapsed wall-clock, and a checksum of
the output dict so cross-host runs can still verify bit-identity.
"""

import argparse
import hashlib
import json
import os
import socket
import time

from repro.experiments import unbalanced_send_vs_optimal
from repro.sweep import available_backends, resolve_jobs

P, M, N, EPS = 1024, 128, 60_000, 0.2


def _checksum(out: dict) -> str:
    blob = json.dumps(out, sort_keys=True, default=float).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--backend", default="pool-steal",
                    help="sweep backend (serial, pool-steal, mpi)")
    ap.add_argument("--jobs", type=int, default=0,
                    help="worker count for local backends (0 = all cores; "
                    "ignored under mpi, where mpirun -n decides)")
    ap.add_argument("--trials", type=int,
                    default=int(os.environ.get("BENCH_SWEEP_TRIALS", "25")))
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--out", default="scaling.jsonl",
                    help="JSONL file to append this point to")
    args = ap.parse_args()

    if args.backend not in available_backends():
        ap.error(f"backend {args.backend!r} unavailable here; "
                 f"available: {available_backends()}")

    t0 = time.perf_counter()
    out = unbalanced_send_vs_optimal(
        p=P, m=M, n=N, epsilon=EPS, trials=args.trials, seed=args.seed,
        jobs=args.jobs, backend=args.backend, include_telemetry=True,
    )
    if out is None:
        return 0  # mpi worker rank: it served trials; rank 0 reports
    elapsed = time.perf_counter() - t0
    telemetry = out.pop("sweep_telemetry")
    record = {
        "backend": args.backend,
        "jobs": args.jobs,
        "workers": telemetry["backend"]["pool_workers"],
        "trials": telemetry["trials"],
        "seed": args.seed,
        "cores": resolve_jobs(0),
        "host": socket.gethostname(),
        "elapsed_s": elapsed,
        "trials_per_s": telemetry["trials"] / elapsed,
        "utilization": telemetry["utilization"],
        "steals": telemetry["backend"]["steals"],
        "checksum": _checksum(out),
    }
    with open(args.out, "a") as fh:
        fh.write(json.dumps(record, default=float) + "\n")
    print(json.dumps(record, default=float))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
