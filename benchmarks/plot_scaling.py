"""Plot the scaling curve collected by ``run_cluster_scaling.sh``.

Reads a ``scaling.jsonl`` (one JSON record per (backend, workers) point,
as appended by ``run_scaling_step.py``) and draws speedup vs. workers
per backend — a PNG when matplotlib is importable, an ASCII chart on
stdout otherwise, so the harness works on bare CI boxes too::

    python benchmarks/plot_scaling.py scaling.jsonl [scaling.png]

Speedup is measured against the slowest single-worker point in the file
(the serial reference when present).
"""

import json
import sys
from collections import defaultdict


def load(path):
    points = [json.loads(line) for line in open(path) if line.strip()]
    if not points:
        raise SystemExit(f"{path} is empty — run run_cluster_scaling.sh first")
    base = max(
        (p for p in points if p["workers"] <= 1),
        key=lambda p: p["elapsed_s"],
        default=min(points, key=lambda p: p["workers"]),
    )
    curves = defaultdict(list)
    for p in points:
        curves[p["backend"]].append(
            (p["workers"], base["elapsed_s"] / p["elapsed_s"])
        )
    return {b: sorted(c) for b, c in curves.items()}, base


def plot_png(curves, out_path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(6, 4))
    top = 1
    for backend, pts in sorted(curves.items()):
        xs, ys = zip(*pts)
        ax.plot(xs, ys, marker="o", label=backend)
        top = max(top, max(xs))
    ideal = range(1, top + 1)
    ax.plot(ideal, ideal, linestyle="--", color="gray", label="ideal")
    ax.set_xlabel("workers")
    ax.set_ylabel("speedup vs serial")
    ax.set_title("sweep scaling: unbalanced_send")
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    print(f"wrote {out_path}")


def plot_ascii(curves, width=40):
    peak = max(s for pts in curves.values() for _, s in pts)
    for backend, pts in sorted(curves.items()):
        print(f"\n{backend}:")
        for workers, speedup in pts:
            bar = "#" * max(1, round(width * speedup / peak))
            print(f"  {workers:>3} workers |{bar:<{width}}| {speedup:.2f}x")


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "scaling.jsonl"
    out_path = sys.argv[2] if len(sys.argv) > 2 else "scaling.png"
    curves, base = load(path)
    print(
        f"reference: backend={base['backend']} workers={base['workers']} "
        f"elapsed={base['elapsed_s']:.3f}s on {base['host']} ({base['cores']} cores)"
    )
    try:
        plot_png(curves, out_path)
    except ImportError:
        plot_ascii(curves)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
