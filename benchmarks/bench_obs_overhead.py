"""Observability overhead guard: tracing disabled must stay free.

The obs layer's contract (docs/observability.md) is that the hooks added
to the engine barrier, the scheduler bridge, the transport and the sweep
runner cost nothing measurable while no tracer/registry is installed —
the shipped default.  This harness runs the same 40k-flit route-verify
profile as ``bench_engine_throughput.py`` three ways:

* **baseline** — nothing installed (the hooks' ``is not None`` fast path);
* **traced** — a :class:`~repro.obs.Tracer` installed (reported for
  context and pinned for *model-time* identity, never throughput-gated:
  recording spans legitimately costs wall-clock);
* **traced+metrics** — tracer and registry both installed (same rules);
* **ledgered** — a :class:`~repro.obs.LoadLedger` installed alone (same
  rules: enabled legs are reported, only the disabled leg is gated).

and asserts that the disabled path holds the routing throughput within 3%
of the pinned acceptance floor from ``BENCH_engine.json``'s contract
(``SEED_ROUTING_MSGS_PER_S × SPEEDUP_FLOOR``), and that **every** variant
leaves the pinned model time bit-identical — observability may record
costs, never move them.  The ledgered leg additionally reconciles: the
sum of its per-superstep charges must equal the pinned model time
exactly (the ledger *is* the cost breakdown, re-read at the barrier).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

or under pytest-benchmark like every other file in this directory.
"""

import time

from repro import BSPm, MachineParams
from repro.obs import (
    LoadLedger,
    MetricsRegistry,
    Tracer,
    ledger_scope,
    metrics_scope,
    tracing,
)
from repro.scheduling import unbalanced_send
from repro.scheduling.execute import execute_schedule
from repro.workloads import uniform_random_relation

from _common import emit
from bench_engine_throughput import (
    ROUTING_MODEL_TIME,
    SEED_ROUTING_MSGS_PER_S,
    SPEEDUP_FLOOR,
)

# The disabled obs path may cost at most 3% of the engine-throughput
# acceptance floor (the floor already absorbs machine noise; 3% is the
# hooks' whole budget on top of it) — the ISSUE acceptance criterion.
THROUGHPUT_FLOOR = SEED_ROUTING_MSGS_PER_S * SPEEDUP_FLOOR
OVERHEAD_TOLERANCE = 0.03

_REPEATS = 3  # best-of-N wall-clock to shed scheduler noise


def _route_once(trace=False, metrics=False, ledger=False):
    import contextlib

    rel = uniform_random_relation(256, 40_000, seed=0)
    sched = unbalanced_send(rel, 64, 0.2, seed=1)
    machine = BSPm(MachineParams(p=256, m=64, L=1))
    best = float("inf")
    model_time = None
    spans = 0
    ledger_charge = None
    for _ in range(_REPEATS):
        tracer = Tracer() if trace else None
        registry = MetricsRegistry() if metrics else None
        book = LoadLedger() if ledger else None
        t0 = time.perf_counter()
        with contextlib.ExitStack() as stack:
            if tracer is not None:
                stack.enter_context(tracing(tracer))
            if registry is not None:
                stack.enter_context(metrics_scope(registry))
            if book is not None:
                stack.enter_context(ledger_scope(book))
            res = execute_schedule(machine, sched)
        best = min(best, time.perf_counter() - t0)
        model_time = res.time
        spans = len(tracer.spans) if tracer is not None else 0
        ledger_charge = book.total_charge() if book is not None else None
    return {
        "messages": int(rel.n),
        "seconds": best,
        "msgs_per_s": rel.n / best,
        "model_time": model_time,
        "spans": spans,
        "ledger_charge": ledger_charge,
    }


def run_all():
    return {
        "baseline": _route_once(),
        "traced": _route_once(trace=True),
        "traced+metrics": _route_once(trace=True, metrics=True),
        "ledgered": _route_once(ledger=True),
    }


def _report(data):
    emit(
        "observability overhead (40k route-verify profile)",
        ["variant", "messages", "seconds", "msgs/s", "model time", "spans"],
        [
            [name, d["messages"], d["seconds"], d["msgs_per_s"],
             d["model_time"], d["spans"]]
            for name, d in data.items()
        ],
    )


def _check(data):
    # Observability may never move a model time — enabled or not.
    for variant, d in data.items():
        assert d["model_time"] == ROUTING_MODEL_TIME, (
            f"{variant}: model time {d['model_time']!r} != pinned "
            f"{ROUTING_MODEL_TIME!r}"
        )
    floor = THROUGHPUT_FLOOR * (1.0 - OVERHEAD_TOLERANCE)
    d = data["baseline"]
    assert d["msgs_per_s"] >= floor, (
        f"baseline: {d['msgs_per_s']:.0f} msg/s is below {floor:.0f} "
        f"(the {THROUGHPUT_FLOOR:.0f} msg/s acceptance floor minus the "
        f"{OVERHEAD_TOLERANCE:.0%} obs-hook budget)"
    )
    # sanity: a traced run actually recorded the expected span tree
    assert data["traced"]["spans"] > 0
    # reconciliation: the ledger's summed charges ARE the model time
    charge = data["ledgered"]["ledger_charge"]
    assert charge == ROUTING_MODEL_TIME, (
        f"ledgered: summed charges {charge!r} != pinned model time "
        f"{ROUTING_MODEL_TIME!r}"
    )


def test_obs_overhead(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _report(data)
    benchmark.extra_info.update(data)
    _check(data)


if __name__ == "__main__":
    result = run_all()
    _report(result)
    _check(result)
    ratio = result["traced"]["msgs_per_s"] / result["baseline"]["msgs_per_s"]
    print(f"\ntraced/baseline throughput ratio: {ratio:.3f}")
