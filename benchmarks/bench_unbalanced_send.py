"""E6.1 — Theorem 6.2: Unbalanced-Send completes within (1+eps) of the
offline optimum w.h.p., and the tail P[T > k sigma] decays.

Workloads: balanced, uniform-random, zipf-skewed, one-to-all (maximal
skew).  Baselines: exact offline optimum, the deterministic grouped
(g-model-emulation) schedule, the naive schedule, and the BSP(g) charge of
Proposition 6.1.

Trial fan-out goes through ``repro.sweep``: per-trial seeds are derived
via SeedSequence spawning (``derive_seed_sequence``, not ``seed + t``),
the offline optimum is shared through the memo cache, and ``BENCH_JOBS``
(default 1) runs the trials on a process pool — results are bit-identical
at any job count.
"""

import os

import numpy as np

from repro.scheduling import (
    bsp_g_routing_time,
    evaluate_schedule,
    grouped_schedule,
    naive_schedule,
    unbalanced_send,
)
from repro.sweep import SweepSpec, cached_offline_report, run_sweep
from repro.theory.chernoff import window_overload_probability
from repro.util.rng import derive_seed_sequence
from repro.workloads import (
    balanced_h_relation,
    one_to_all_relation,
    uniform_random_relation,
    zipf_h_relation,
)

from _common import emit

P, M, EPS = 1024, 128, 0.2
G = P / M
TRIALS = 25
JOBS = int(os.environ.get("BENCH_JOBS", "1"))


def workloads():
    def wseed(name):
        return derive_seed_sequence(0, "bench_unbalanced_send", "workload", name)

    return {
        "balanced": balanced_h_relation(P, 64, seed=wseed("balanced")),
        "uniform": uniform_random_relation(P, 60_000, seed=wseed("uniform")),
        "zipf": zipf_h_relation(P, 60_000, alpha=1.2, seed=wseed("zipf")),
        "one-to-all": one_to_all_relation(P),
    }


def _trial(rel, seed):
    """One Unbalanced-Send draw (module-level for pool dispatch)."""
    rep = evaluate_schedule(unbalanced_send(rel, M, EPS, seed=seed), m=M)
    return rep.completion_time, int(rep.overloaded)


def run_all():
    cases = workloads()
    spec = SweepSpec(
        name="bench_unbalanced_send",
        fn=_trial,
        grid={name: {"rel": rel} for name, rel in cases.items()},
        trials=TRIALS,
        seed=0,
    )
    by_point = run_sweep(spec, jobs=JOBS).results_by_point()
    out = {}
    for name, rel in cases.items():
        opt = cached_offline_report(rel, M)
        times = [t for t, _ in by_point[name]]
        overloads = sum(o for _, o in by_point[name])
        grp = evaluate_schedule(grouped_schedule(rel, M), m=M)
        nai = evaluate_schedule(naive_schedule(rel), m=M)
        out[name] = {
            "opt": opt.completion_time,
            "mean_ratio": float(np.mean(times)) / opt.completion_time,
            "max_ratio": float(np.max(times)) / opt.completion_time,
            "overload_rate": overloads / TRIALS,
            "grouped_ratio": grp.completion_time / opt.completion_time,
            "naive_ratio": nai.completion_time / opt.completion_time,
            "bsp_g_ratio": bsp_g_routing_time(rel, G) / opt.completion_time,
        }
    return out


def test_unbalanced_send_vs_optimal(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        f"E6.1 Unbalanced-Send vs offline optimum (p={P}, m={M}, eps={EPS}, {TRIALS} seeds)",
        ["workload", "OPT", "mean T/OPT", "max T/OPT", "overload rate",
         "grouped/OPT", "naive/OPT", "BSP(g)/OPT"],
        [
            [k, v["opt"], v["mean_ratio"], v["max_ratio"], v["overload_rate"],
             v["grouped_ratio"], v["naive_ratio"], v["bsp_g_ratio"]]
            for k, v in data.items()
        ],
    )
    benchmark.extra_info.update(data)
    for name, v in data.items():
        # Theorem 6.2 shape: within (1+eps) of optimal on every workload
        assert v["max_ratio"] <= 1 + EPS + 0.05, name
        assert v["overload_rate"] <= max(
            0.15, window_overload_probability(60_000, M, EPS)
        )
    # skew makes the locally-limited baseline Θ(g) worse
    assert data["one-to-all"]["bsp_g_ratio"] >= 0.9 * G
    assert data["zipf"]["bsp_g_ratio"] >= 3.0
    # balanced workloads show no such gap
    assert data["balanced"]["bsp_g_ratio"] <= 3.0
    # the naive schedule pays the exponential penalty under load
    assert data["uniform"]["naive_ratio"] > 10.0


def _tail_trial(rel, m_small, eps, seed):
    """One completion time at small m (module-level for pool dispatch)."""
    rep = evaluate_schedule(unbalanced_send(rel, m_small, eps, seed=seed), m=m_small)
    return rep.completion_time


def test_tail_probability_decay(benchmark):
    """P[T > k·sigma] decays with k: measured empirically at small m where
    overloads actually happen."""

    def measure():
        rel = uniform_random_relation(
            256, 20_000, seed=derive_seed_sequence(0, "bench_unbalanced_send", "tail")
        )
        m_small, eps = 24, 0.1
        opt = max(rel.n / m_small, rel.x_bar, rel.y_bar)
        sigma = (1 + eps) * opt
        spec = SweepSpec(
            name="bench_unbalanced_send_tail",
            fn=_tail_trial,
            grid={"tail": {"rel": rel}},
            trials=120,
            common={"m_small": m_small, "eps": eps},
            seed=0,
        )
        times = np.asarray(run_sweep(spec, jobs=JOBS).results)
        return {k: float(np.mean(times > k * sigma)) for k in (1.0, 1.5, 2.0, 4.0)}

    tail = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "E6.1b tail of the completion time (m=24, eps=0.1, 120 seeds)",
        ["k", "P[T > k·sigma] measured"],
        [[k, v] for k, v in tail.items()],
    )
    ks = sorted(tail)
    vals = [tail[k] for k in ks]
    assert vals == sorted(vals, reverse=True)  # monotone decay
    assert tail[4.0] <= tail[1.0]
