"""E5.2 — Theorem 5.2 / Lemma 5.3: the Leader Recognition gap between the
CRCW PRAM(m) (free concurrent-read ROM) and the QSM(m) (bandwidth-limited).

Series: time on both machines as p grows at fixed m; the ratio grows like
``p/m``, which dominates the paper's ``Ω(p lg m / (m lg p))`` separation —
when ``m << p`` this vastly improves the previous ``2^Ω(sqrt(lg p))``.
"""


from repro.concurrent_read import leader_recognition_pramm, leader_recognition_qsm_m
from repro.theory.bounds import (
    er_cr_pramm_separation,
    leader_recognition_qsm_m_lower,
)

from _common import emit

M = 8
SWEEP = [128, 256, 512, 1024]


def run_sweep():
    rows = []
    for p in SWEEP:
        leader = p // 3
        t_pram = leader_recognition_pramm(p, leader)[0].time
        res_qsm, answers = leader_recognition_qsm_m(p, leader, m=M)
        assert set(answers) == {leader}
        t_qsm = res_qsm.time
        rows.append(
            (p, M, t_pram, t_qsm, t_qsm / t_pram,
             leader_recognition_qsm_m_lower(p, M, 64),
             er_cr_pramm_separation(p, M))
        )
    return rows


def test_leader_recognition_gap(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        f"E5.2 Leader Recognition: CRCW PRAM(m) vs QSM(m) (m={M})",
        ["p", "m", "PRAM(m) time", "QSM(m) time", "measured gap",
         "Lemma 5.3 lower", "paper Ω(p·lg m/(m·lg p))"],
        rows,
    )
    gaps = [r[4] for r in rows]
    # the measured gap grows with p (the separation is real and widening)
    assert gaps == sorted(gaps)
    for p, m, t_pram, t_qsm, gap, lower, paper_sep in rows:
        # the QSM(m) respects Lemma 5.3 and the measured gap dominates the
        # paper's separation formula
        assert t_qsm >= lower
        assert gap >= paper_sep
        # the PRAM(m) side is O(1) at 64-bit words
        assert t_pram <= 4
