"""E2.1 — Section 2's simplified cost metric: any program priced under the
self-scheduling BSP(m) metric ``max(w, h, n/m, L)`` is realizable on the
true BSP(m) within ``(1+eps)`` w.h.p. (via Unbalanced-Send).

Trials fan out through ``repro.sweep`` with SeedSequence-derived per-trial
streams (``BENCH_JOBS`` selects the pool width; results are identical at
any job count).
"""

import os

import numpy as np

from repro.algorithms import self_scheduling_transfer
from repro.sweep import SweepSpec, run_sweep
from repro.util.rng import derive_seed_sequence
from repro.workloads import (
    balanced_h_relation,
    one_to_all_relation,
    uniform_random_relation,
    zipf_h_relation,
)

from _common import emit

M, EPS, TRIALS = 128, 0.15, 15
JOBS = int(os.environ.get("BENCH_JOBS", "1"))


def _trial(rel, seed):
    """One metric-vs-realized comparison (module-level for pool dispatch)."""
    return self_scheduling_transfer(rel, M, epsilon=EPS, seed=seed)


def run_all():
    p = 1024

    def wseed(name):
        return derive_seed_sequence(0, "bench_self_scheduling", "workload", name)

    cases = {
        "balanced": balanced_h_relation(p, 32, seed=wseed("balanced")),
        "uniform": uniform_random_relation(p, 50_000, seed=wseed("uniform")),
        "zipf": zipf_h_relation(p, 50_000, alpha=1.2, seed=wseed("zipf")),
        "one-to-all": one_to_all_relation(p),
    }
    spec = SweepSpec(
        name="bench_self_scheduling",
        fn=_trial,
        grid={name: {"rel": rel} for name, rel in cases.items()},
        trials=TRIALS,
        seed=0,
    )
    by_point = run_sweep(spec, jobs=JOBS).results_by_point()
    rows = []
    for name in cases:
        trials = by_point[name]
        self_c, real_c, _ = trials[-1]  # last pair for display
        ratios = [ratio for _, _, ratio in trials]
        rows.append(
            (name, self_c, real_c, float(np.mean(ratios)), float(np.max(ratios)))
        )
    return rows


def test_self_scheduling_transfer(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        f"E2.1 self-scheduling metric vs realized BSP(m) cost (m={M}, eps={EPS}, {TRIALS} seeds)",
        ["workload", "self-sched cost", "realized cost", "mean ratio", "max ratio"],
        rows,
    )
    for name, self_c, real_c, mean_r, max_r in rows:
        # the Section 2 claim: within (1 + eps) with very high probability
        assert max_r <= 1 + EPS + 0.05, name
        assert mean_r >= 0.999, name  # realization can't beat the metric
