"""E2.1 — Section 2's simplified cost metric: any program priced under the
self-scheduling BSP(m) metric ``max(w, h, n/m, L)`` is realizable on the
true BSP(m) within ``(1+eps)`` w.h.p. (via Unbalanced-Send).
"""

import numpy as np

from repro.algorithms import self_scheduling_transfer
from repro.workloads import (
    balanced_h_relation,
    one_to_all_relation,
    uniform_random_relation,
    zipf_h_relation,
)

from _common import emit

M, EPS, TRIALS = 128, 0.15, 15


def run_all():
    p = 1024
    cases = {
        "balanced": balanced_h_relation(p, 32, seed=0),
        "uniform": uniform_random_relation(p, 50_000, seed=1),
        "zipf": zipf_h_relation(p, 50_000, alpha=1.2, seed=2),
        "one-to-all": one_to_all_relation(p),
    }
    rows = []
    for name, rel in cases.items():
        ratios = []
        for seed in range(TRIALS):
            self_c, real_c, ratio = self_scheduling_transfer(
                rel, M, epsilon=EPS, seed=seed
            )
        # keep last pair for display, ratios across trials for the bound
            ratios.append(ratio)
        rows.append(
            (name, self_c, real_c, float(np.mean(ratios)), float(np.max(ratios)))
        )
    return rows


def test_self_scheduling_transfer(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        f"E2.1 self-scheduling metric vs realized BSP(m) cost (m={M}, eps={EPS}, {TRIALS} seeds)",
        ["workload", "self-sched cost", "realized cost", "mean ratio", "max ratio"],
        rows,
    )
    for name, self_c, real_c, mean_r, max_r in rows:
        # the Section 2 claim: within (1 + eps) with very high probability
        assert max_r <= 1 + EPS + 0.05, name
        assert mean_r >= 0.999, name  # realization can't beat the metric
