"""E6.5 — Theorems 6.5 & 6.7: dynamic stability under adversarial arrivals.

Series regenerated:
* BSP(g) backlog growth as the single-source rate crosses ``1/g``
  (Theorem 6.5: stable iff beta <= 1/g; measured growth rate beta - 1/g);
* Algorithm B on the matched BSP(m) staying stable at local rates far past
  ``1/g`` and only failing past the aggregate limit (Theorem 6.7).

The beta and alpha sweeps fan their grid points out through
``repro.sweep`` (SeedSequence-derived per-point streams; ``BENCH_JOBS``
selects the pool width, results identical at any job count).
"""

import os
import time

import pytest

from repro import MachineParams
from repro.dynamic import (
    AlgorithmBProtocol,
    BSPgIntervalProtocol,
    SingleTargetAdversary,
    UniformAdversary,
    check_compliance,
    run_dynamic,
)
from repro.sweep import SweepSpec, run_sweep

from _common import emit

P, M, L, W, T = 256, 16, 8.0, 128, 240_000
JOBS = int(os.environ.get("BENCH_JOBS", "1"))


def _crossing_point(beta_g, seed):
    """One beta·g cell of the Theorem-6.5 crossing (module-level for pool
    dispatch)."""
    local, global_ = MachineParams.matched_pair(p=P, m=M, L=L)
    g = local.g
    beta = beta_g / g
    trace_seed, proto_seed = seed.spawn(2)
    trace = SingleTargetAdversary(P, W, beta=beta).generate(T, seed=trace_seed)
    ok, _ = check_compliance(trace, W, alpha=beta, beta=beta)
    assert ok
    res_g = run_dynamic(BSPgIntervalProtocol(local, W), trace)
    res_m = run_dynamic(
        AlgorithmBProtocol(global_, W, alpha=beta, epsilon=0.25, seed=proto_seed), trace
    )
    return (beta_g, beta - 1 / g,
            res_g.backlog_slope(), res_g.final_backlog, res_g.is_stable(),
            res_m.backlog_slope(), res_m.final_backlog, res_m.is_stable())


def run_crossing():
    g = MachineParams.matched_pair(p=P, m=M, L=L)[0].g
    spec = SweepSpec(
        name="bench_dynamic_crossing",
        fn=_crossing_point,
        grid={f"beta_g={bg:g}": {"beta_g": bg} for bg in (0.5, 0.9, 1.1, 2.0, 4.0)},
        seed=0,
    )
    return run_sweep(spec, jobs=JOBS).results, g


def test_theorem_6_5_crossing(benchmark):
    rows, g = benchmark.pedantic(run_crossing, rounds=1, iterations=1)
    emit(
        f"E6.5 single-source flood at rate beta (g = {g:g}): BSP(g) vs Algorithm B on BSP(m)",
        ["beta·g", "theory slope (beta-1/g)", "BSP(g) slope", "BSP(g) backlog",
         "BSP(g) stable", "AlgB slope", "AlgB backlog", "AlgB stable"],
        rows,
    )
    for beta_g, theory, slope_g, back_g, stable_g, slope_m, back_m, stable_m in rows:
        if beta_g < 1.0:
            assert stable_g, beta_g
        if beta_g > 1.0:
            assert not stable_g, beta_g
            # measured growth tracks the proof's beta - 1/g
            assert slope_g == pytest.approx(theory, rel=0.25)
        # Algorithm B is stable across the whole sweep
        assert stable_m, beta_g


def _aggregate_point(frac, seed):
    """One alpha = frac·m cell of the Theorem-6.7 limit sweep."""
    _, global_ = MachineParams.matched_pair(p=P, m=M, L=L)
    alpha = frac * M
    trace_seed, proto_seed = seed.spawn(2)
    trace = UniformAdversary(P, W, alpha=alpha, beta=alpha).generate(T, seed=trace_seed)
    res = run_dynamic(
        AlgorithmBProtocol(global_, W, alpha=alpha, epsilon=0.25, seed=proto_seed), trace
    )
    return (frac, res.backlog_slope(), res.max_backlog, res.is_stable())


def run_aggregate_limit():
    spec = SweepSpec(
        name="bench_dynamic_aggregate",
        fn=_aggregate_point,
        grid={f"frac={f:g}": {"frac": f} for f in (0.25, 0.5, 1.5)},
        seed=0,
    )
    return run_sweep(spec, jobs=JOBS).results


def test_theorem_6_7_aggregate_limit(benchmark):
    rows = benchmark.pedantic(run_aggregate_limit, rounds=1, iterations=1)
    emit(
        "E6.5b Algorithm B under uniform arrivals at alpha = frac·m",
        ["alpha/m", "backlog slope", "max backlog", "stable"],
        rows,
    )
    by_frac = {frac: stable for frac, _, _, stable in rows}
    assert by_frac[0.25] and by_frac[0.5]
    assert not by_frac[1.5]  # past the aggregate bandwidth: no one is stable


def run_strawman():
    import numpy as np

    from repro.dynamic import ImmediateProtocol
    from repro.dynamic.adversary import ArrivalTrace

    _, global_ = MachineParams.matched_pair(p=P, m=M, L=1)
    rows = []
    for spike in (32, 64, 128, 224):
        ts, srcs, dests = [], [], []
        for t0 in range(0, 8000, 1000):
            ts.extend([t0] * spike)
            srcs.extend(range(spike))
            dests.extend((np.arange(spike) + 1) % P)
        trace = ArrivalTrace(
            p=P, horizon=8000,
            t=np.asarray(ts), src=np.asarray(srcs), dest=np.asarray(dests),
        )
        imm = run_dynamic(ImmediateProtocol(global_), trace)
        algb = run_dynamic(
            AlgorithmBProtocol(global_, 128, alpha=spike / 1000, epsilon=0.25, seed=1),
            trace,
        )
        worst_imm = max(b.service for b in imm.batches)
        worst_algb = max(b.service for b in algb.batches)
        rows.append((spike, worst_imm, worst_algb, imm.mean_sojourn, algb.mean_sojourn))
    return rows


def test_immediate_strawman_vs_algorithm_b(benchmark):
    """E6.5c — the §3 'send at every step until successful' strawman: always
    terminates on the BSP(m) (the paper's contrast with the multiple-channel
    model) but pays e^{spike/m - 1} per burst; Algorithm B's batching +
    staggering flattens the same bursts."""
    rows = benchmark.pedantic(run_strawman, rounds=1, iterations=1)
    emit(
        "E6.5c simultaneous-spike arrivals: immediate injection vs Algorithm B (m=16)",
        ["spike size", "worst step (immediate)", "worst batch (AlgB)",
         "mean sojourn (imm)", "mean sojourn (AlgB)"],
        rows,
    )
    import numpy as np

    for spike, worst_imm, worst_algb, _, _ in rows:
        if spike > M:
            assert worst_imm >= np.exp(spike / M - 1) * 0.99
        if spike >= 4 * M:  # past the small-burst regime AlgB wins outright
            assert worst_algb < worst_imm
    # the gap explodes with spike size (exponential vs linear)
    gaps = [r[1] / r[2] for r in rows if r[0] > M]
    assert gaps == sorted(gaps)


def run_interval_horizon(horizon=100_000):
    from repro.dynamic import ImmediateProtocol

    _, global_ = MachineParams.matched_pair(p=P, m=M, L=1)
    trace = UniformAdversary(P, W, alpha=M / 2, beta=M / 2).generate(horizon, seed=3)
    t0 = time.perf_counter()
    res = run_dynamic(ImmediateProtocol(global_), trace)
    dt = time.perf_counter() - t0
    return horizon, int(trace.t.size), dt, res.is_stable()


def test_100k_interval_horizon(benchmark):
    """The linearized ``run_dynamic`` must sustain a 100k-interval horizon
    (``ImmediateProtocol`` opens one interval per step) in under 5 s — the
    scale the Theorem-6.5/6.7 sweeps now run at."""
    horizon, msgs, dt, stable = benchmark.pedantic(
        run_interval_horizon, rounds=1, iterations=1
    )
    emit(
        "E6.5d 100k-interval horizon (ImmediateProtocol, uniform alpha = m/2)",
        ["intervals", "messages", "seconds", "stable"],
        [[horizon, msgs, dt, stable]],
    )
    assert stable
    assert dt < 5.0, f"100k-interval horizon took {dt:.1f}s (need < 5s)"
