"""T1.5 — Table 1, row 5: sorting with m = O(n^{1-eps}).

Paper claim: Θ(n/m) on QSM(m) / Θ(n/m + L) on BSP(m) (communication), vs
Ω(g lg n / lg lg n) on the g-models.  Our engine columnsort reproduces the
communication term exactly; the local-sort work carries a documented extra
``lg`` factor (DESIGN.md substitution), so the benchmark separates the two
components via the cost breakdown.
"""

import numpy as np
import pytest

from repro import BSPg, BSPm, MachineParams
from repro.algorithms import columnsort
from repro.theory import bounds as B

from _common import emit

SWEEP = [(512, 8), (2048, 8), (8192, 8)]  # n grows, m fixed: time ~ n/m
L = 2.0
P = 64


def run_sweep():
    from repro.algorithms import choose_columns

    rng = np.random.default_rng(0)
    rows = []
    for n, m in SWEEP:
        keys = rng.random(n)
        local, global_ = MachineParams.matched_pair(p=P, m=m, L=L)
        # pin the same column count on both machines for a like-for-like
        # communication comparison (the g-machine would otherwise widen)
        _, s = choose_columns(n, min(m, P - 1))
        res_g, out_g = columnsort(BSPg(local), keys, columns=s)
        res_m, out_m = columnsort(BSPm(global_), keys, columns=s)
        assert np.array_equal(out_g, np.sort(keys))
        assert np.array_equal(out_m, np.sort(keys))
        comm_g = sum(r.breakdown.local_band for r in res_g.records)
        comm_m = sum(
            max(r.breakdown.local_band, r.breakdown.global_band)
            for r in res_m.records
        )
        rows.append((n, m, local.g, res_g.time, res_m.time, comm_g, comm_m))
    return rows


def test_sorting_separation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = []
    for n, m, g, t_g, t_m, comm_g, comm_m in rows:
        table.append(
            [n, m, g, t_m, B.sorting_bsp_m(n, m, L), comm_m, n / m,
             t_g, comm_g, comm_g / comm_m]
        )
        benchmark.extra_info[f"n{n}"] = {"bsp_m": t_m, "bsp_g": t_g}
    emit(
        "T1.5 sorting (columnsort; total and communication-only model times)",
        ["n", "m", "g", "BSP(m) total", "Θ(n/m+L)", "BSP(m) comm", "n/m",
         "BSP(g) total", "BSP(g) comm", "comm ratio"],
        table,
    )
    # communication component is Θ(n/m): ratios across the n-sweep track n
    comm_ms = [row[6] for row in rows]
    assert comm_ms[1] / comm_ms[0] == pytest.approx(4.0, rel=0.3)
    assert comm_ms[2] / comm_ms[1] == pytest.approx(4.0, rel=0.3)
    # and the g-model pays Θ(g) more for the same communication
    for n, m, g, t_g, t_m, comm_g, comm_m in rows:
        assert comm_g / comm_m == pytest.approx(g, rel=0.35)


def test_sorting_qsm_models(benchmark):
    """The QSM pair on the same columnsort (Table 1's QSM sorting row:
    Θ(n/m) vs the Ω(g lg n / lg lg n) lower bound)."""
    import numpy as np

    from repro import QSMg, QSMm
    from repro.algorithms import choose_columns

    def run():
        rng = np.random.default_rng(1)
        rows = []
        for n in (512, 2048):
            keys = rng.random(n)
            local, global_ = MachineParams.matched_pair(p=P, m=8, L=L)
            _, s = choose_columns(n, 7)
            res_g, out_g = columnsort(QSMg(local), keys, columns=s)
            res_m, out_m = columnsort(QSMm(global_), keys, columns=s)
            assert np.array_equal(out_g, np.sort(keys))
            assert np.array_equal(out_m, np.sort(keys))
            rows.append((n, res_m.time, res_g.time, res_g.time / res_m.time))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "T1.5b sorting on the QSM pair (columnsort, m=8, g=8)",
        ["n", "QSM(m) total", "QSM(g) total", "ratio"],
        rows,
    )
    for n, t_m, t_g, ratio in rows:
        assert t_m < t_g  # the globally-limited model wins
        assert ratio > 1.3
