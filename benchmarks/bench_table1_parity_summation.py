"""T1.3 — Table 1, row 3: parity and summation (n = p).

Paper claim: QSM(m) Θ(lg m + n/m) vs QSM(g) Ω(g lg n / lg lg n); BSP(m)
O(L lg m / lg L + n/m + L) vs BSP(g) Θ(L lg n / lg(L/g)).
"""


from repro import BSPg, BSPm, MachineParams, QSMg, QSMm
from repro.algorithms import parity, summation
from repro.theory import bounds as B

from _common import emit

SWEEP = [(256, 16, 8.0), (1024, 32, 8.0), (4096, 64, 8.0)]


def run_sweep():
    rows = []
    for p, m, L in SWEEP:
        local, global_ = MachineParams.matched_pair(p=p, m=m, L=L)
        values = [1.0] * p
        bits = [i % 2 for i in range(p)]
        t = {
            "sum_bsp_g": summation(BSPg(local), values)[0].time,
            "sum_bsp_m": summation(BSPm(global_), values)[0].time,
            "sum_qsm_g": summation(QSMg(local), values)[0].time,
            "sum_qsm_m": summation(QSMm(global_), values)[0].time,
            "par_qsm_m": parity(QSMm(global_), bits)[0].time,
        }
        rows.append((p, m, L, local.g, t))
    return rows


def test_parity_summation_separation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = []
    for p, m, L, g, t in rows:
        table.append(
            [p, m, g,
             t["sum_qsm_m"], B.parity_qsm_m(p, m),
             t["sum_qsm_g"], B.parity_qsm_g_lower(p, g),
             t["sum_qsm_g"] / t["sum_qsm_m"],
             t["sum_bsp_m"], t["sum_bsp_g"]]
        )
        benchmark.extra_info[f"p{p}"] = t
    emit(
        "T1.3 parity / summation (n = p, model times)",
        ["n", "m", "g", "QSM(m)", "Θ bound", "QSM(g)", "Ω lower",
         "QSM ratio", "BSP(m)", "BSP(g)"],
        table,
    )
    for p, m, L, g, t in rows:
        # m-models beat g-models
        assert t["sum_qsm_m"] < t["sum_qsm_g"]
        assert t["sum_bsp_m"] < t["sum_bsp_g"]
        # upper bounds tracked within constants
        assert t["sum_qsm_m"] <= 8 * B.parity_qsm_m(p, m)
        assert t["sum_bsp_m"] <= 8 * B.parity_bsp_m(p, m, L)
        # the g-model respects its Beame–Håstad-derived lower bound
        assert t["sum_qsm_g"] >= B.parity_qsm_g_lower(p, g)
        # parity == summation structurally: same machine time
        assert t["par_qsm_m"] == t["sum_qsm_m"]
