"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts (a
Table-1 row or a numbered theorem's quantitative claim), prints the
paper-style comparison table, attaches the measured *model* times to
``benchmark.extra_info`` (the wall-clock number pytest-benchmark reports is
the simulator's own speed, which is not the quantity the paper bounds), and
asserts the reproduction's *shape*: who wins, by roughly what factor, where
the crossovers fall.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.util.reporting import Table

__all__ = ["emit", "ratio_row", "geometric_sizes"]


def emit(title: str, columns: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render and print one paper-style table; returns the rendered text."""
    t = Table(columns, title=title)
    for row in rows:
        t.add_row(row)
    text = t.render()
    print("\n" + text)
    return text


def ratio_row(name: str, strong: float, weak: float, expected: float) -> list:
    """A standard (problem, global, local, measured ratio, paper ratio) row.

    A zero strong time makes the ratio undefined; it is reported as NaN
    (rendered ``—`` by the table, and finite-safe in JSON exports) rather
    than ``inf``.
    """
    measured = weak / strong if strong else float("nan")
    return [name, strong, weak, measured, expected]


def geometric_sizes(start: int, factor: int, count: int) -> list:
    """``count`` sizes growing geometrically from ``start``."""
    return [start * factor**i for i in range(count)]
