"""E6.6 — Claim 6.8: the dominating M/G/1 system is stable with expected
time in system O(w^2/u).

We regenerate the analytic series (service moments, stability frontier,
expected sojourn) and cross-check the O(w^2/u) shape against the measured
sojourn of Algorithm B batches in a matching simulation.
"""

import numpy as np
import pytest

from repro import MachineParams
from repro.dynamic import (
    ZETA4,
    AlgorithmBProtocol,
    SingleTargetAdversary,
    expected_time_in_system,
    mg1_stable,
    required_u,
    run_dynamic,
    s0_service_moments,
)

from _common import emit


def run_analytics():
    rows = []
    for w in (64, 128, 256, 512):
        for r in (0.01, 0.05):
            u = required_u(w, r)
            m1, m2 = s0_service_moments(w, u)
            rows.append(
                (w, r, u, m1, mg1_stable(r, m1), expected_time_in_system(w, u, r))
            )
    return rows


def test_claim_6_8_analytics(benchmark):
    rows = benchmark.pedantic(run_analytics, rounds=1, iterations=1)
    emit(
        "E6.6 Claim 6.8: dominating M/G/1 queue (u = floor(1.21 r w)+1)",
        ["w", "r", "u", "E[S'']", "stable", "E[time in system] bound"],
        rows,
    )
    for w, r, u, m1, stable, ets in rows:
        assert stable, (w, r)
        assert m1 == pytest.approx(ZETA4 * w / u, rel=1e-6)
        assert np.isfinite(ets)
    # O(w^2/u) shape: quadruple w at fixed r -> u grows ~4x, bound ~4x
    small = [row for row in rows if row[1] == 0.01]
    assert small[-1][5] / small[0][5] == pytest.approx(
        (small[-1][0] / small[0][0]) ** 2 * small[0][2] / small[-1][2], rel=0.25
    )


def run_measured_sojourn():
    """Measured batch sojourn of Algorithm B grows ~linearly in w when the
    system is comfortably stable (the w^2/u bound at u ~ w is ~w)."""
    P, M = 256, 32
    rows = []
    for w in (64, 128, 256):
        _, global_ = MachineParams.matched_pair(p=P, m=M, L=4.0)
        beta = 0.5
        trace = SingleTargetAdversary(P, w, beta=beta).generate(80 * w, seed=5)
        res = run_dynamic(
            AlgorithmBProtocol(global_, w, alpha=beta, epsilon=0.25, seed=6), trace
        )
        rows.append((w, res.mean_sojourn, res.max_backlog, res.is_stable()))
    return rows


def test_measured_sojourn_scales_with_w(benchmark):
    rows = benchmark.pedantic(run_measured_sojourn, rounds=1, iterations=1)
    emit(
        "E6.6b measured Algorithm B batch sojourn vs interval w",
        ["w", "mean sojourn", "max backlog", "stable"],
        rows,
    )
    for w, sojourn, _, stable in rows:
        assert stable
        assert sojourn <= 2.0 * w  # the batch drains within ~one interval
    assert rows[-1][1] > rows[0][1]  # sojourn grows with w
