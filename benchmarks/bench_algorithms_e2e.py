"""End-to-end algorithm-layer benchmark: columnar ports vs scalar twins.

The algorithm programs (sample sort, the QSM-on-BSP h-relation emulation,
and the rest of the Table-1 suite) were ported from per-key scalar
``ctx.send``/``ctx.read``/``ctx.write`` loops to the engine's batch APIs.
The porting contract has two halves, both asserted here:

* **bit-identical model times** — a port must not move ``RunResult.time``
  relative to its frozen scalar twin in
  :mod:`repro.algorithms.scalar_reference`;
* **>= 5x end-to-end wall-clock speedup** at ``p = 64`` on the two
  high-volume profiles (sample sort and the h-relation emulation).

Run standalone to (re)generate the regression baseline::

    PYTHONPATH=src python benchmarks/bench_algorithms_e2e.py

which writes ``BENCH_algorithms.json`` (keys/s and requests/s for the
vectorized and scalar paths, speedups, and the shared model times) to the
repository root, or under pytest-benchmark like every other file in this
directory.
"""

import json
import os
import time

import numpy as np

from repro import BSPm, MachineParams
from repro.algorithms import scalar_reference as sr
from repro.algorithms.qsm_on_bsp import run_qsm_program_on_bsp
from repro.algorithms.sample_sort import sample_sort

from _common import emit

P = 64
M = 16
SPEEDUP_FLOOR = 5.0

# Best-of-N wall clocks on both sides: every run is deterministic (same
# seeds, same model times), so the minimum is the least-noisy estimate of
# the code's actual speed — single-shot timing put the h-relation ratio
# anywhere between 4.5x and 6.4x on an otherwise idle box.
REPS = int(os.environ.get("BENCH_ALGORITHMS_REPS", "2"))

SORT_N = 120_000
SORT_SEED = 7

HREL_PHASES = 4
HREL_H = 512  # shared-memory requests per processor per phase


def _machine():
    return BSPm(MachineParams(p=P, m=M, L=2))


def _best_of(fn):
    """Run ``fn`` ``REPS`` times; return (last result, fastest wall time)."""
    best = float("inf")
    result = None
    for _ in range(max(1, REPS)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def _sample_sort_profile():
    keys = np.random.default_rng(SORT_SEED).uniform(-1e6, 1e6, size=SORT_N)

    (res_vec, out_vec), dt_vec = _best_of(
        lambda: sample_sort(_machine(), keys, seed=SORT_SEED)
    )
    (res_sc, out_sc), dt_sc = _best_of(
        lambda: sr.sample_sort_scalar(_machine(), keys, seed=SORT_SEED)
    )

    assert np.array_equal(out_vec, out_sc)
    assert np.array_equal(out_vec, np.sort(keys))
    return {
        "keys": SORT_N,
        "seconds": dt_vec,
        "scalar_seconds": dt_sc,
        "keys_per_s": SORT_N / dt_vec,
        "scalar_keys_per_s": SORT_N / dt_sc,
        "speedup_vs_scalar": dt_sc / dt_vec,
        "model_time": res_vec.time,
        "scalar_model_time": res_sc.time,
    }


def _hrel_qsm_program(ctx, phases, h, span):
    """An h-relation through the emulated shared memory: every phase each
    processor issues ``h`` requests in one batch call — write phases and
    read phases alternate, addresses strided so the requests spread evenly
    across owners."""
    pid = ctx.pid
    seen = 0
    j = np.arange(h, dtype=np.int64)
    for ph in range(phases):
        base = pid * h + ph
        if ph % 2 == 0:
            ctx.write_many((base + j * 2) % span, (pid + j).astype(np.float64))
            ctx.work(h)
            yield
        else:
            handle = ctx.read_many((base + j * 3 + 1) % span)
            ctx.work(h)
            yield
            vals = handle.values
            seen += len(vals) - vals.count(None)
    return seen


def _hrelation_profile():
    span = P * HREL_H
    requests = P * HREL_H * HREL_PHASES
    args = (HREL_PHASES, HREL_H, span)

    res_vec, dt_vec = _best_of(
        lambda: run_qsm_program_on_bsp(_machine(), _hrel_qsm_program, args=args)
    )
    res_sc, dt_sc = _best_of(
        lambda: sr.run_qsm_on_bsp_scalar(_machine(), _hrel_qsm_program, args=args)
    )

    assert res_vec.results == res_sc.results
    return {
        "requests": requests,
        "seconds": dt_vec,
        "scalar_seconds": dt_sc,
        "reqs_per_s": requests / dt_vec,
        "scalar_reqs_per_s": requests / dt_sc,
        "speedup_vs_scalar": dt_sc / dt_vec,
        "model_time": res_vec.time,
        "scalar_model_time": res_sc.time,
    }


def run_all():
    return {
        "sample_sort": _sample_sort_profile(),
        "h_relation_emulation": _hrelation_profile(),
    }


def _report(data):
    ss, hr = data["sample_sort"], data["h_relation_emulation"]
    emit(
        "algorithm layer end-to-end (columnar vs scalar twins, p=64)",
        ["profile", "volume", "seconds", "scalar s", "speedup", "model time"],
        [
            ["sample sort (120k keys)", ss["keys"], ss["seconds"],
             ss["scalar_seconds"], ss["speedup_vs_scalar"], ss["model_time"]],
            ["h-relation emulation", hr["requests"], hr["seconds"],
             hr["scalar_seconds"], hr["speedup_vs_scalar"], hr["model_time"]],
        ],
    )


def _check(data):
    for name, profile in data.items():
        # The porting contract: batch APIs are pricing-invisible.
        assert profile["model_time"] == profile["scalar_model_time"], (
            f"{name}: vectorized model time {profile['model_time']} != "
            f"scalar {profile['scalar_model_time']}"
        )
        speedup = profile["speedup_vs_scalar"]
        assert speedup >= SPEEDUP_FLOOR, (
            f"{name}: end-to-end speedup {speedup:.1f}x is below the "
            f"{SPEEDUP_FLOOR}x floor"
        )


def write_baseline(path="BENCH_algorithms.json"):
    data = run_all()
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    return data


def test_algorithms_e2e(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _report(data)
    benchmark.extra_info.update(data)
    _check(data)


if __name__ == "__main__":
    out = os.environ.get("BENCH_ALGORITHMS_JSON", "BENCH_algorithms.json")
    result = write_baseline(out)
    _report(result)
    _check(result)
    print(
        f"\nwrote {out}  (speedups vs scalar: "
        f"sample sort {result['sample_sort']['speedup_vs_scalar']:.1f}x, "
        f"h-relation {result['h_relation_emulation']['speedup_vs_scalar']:.1f}x)"
    )
