"""E3.1 — total exchange and the "chatting" comparison (Section 3).

Series regenerated:
* balanced total exchange: latin-square schedule meets the bandwidth lower
  bound exactly when ``m | p``;
* unbalanced total exchange: Bhatt-et-al-style centralized scheduling pays
  ``Θ(p^2)`` preprocessing to gather the descriptors, vs the paper's
  distributed approach that communicates only ``n``
  (``tau = O(p/m + L + L lg m / lg L)``) — a widening end-to-end win.
"""


from repro.algorithms import (
    chatting_schedule_centralized,
    chatting_schedule_distributed,
    latin_square_schedule,
    total_exchange_lower_bound,
)
from repro.scheduling import evaluate_schedule
from repro.workloads import total_exchange_relation

from _common import emit


def run_balanced():
    rows = []
    for p, m in [(16, 4), (32, 8), (64, 8), (64, 32)]:
        sched = latin_square_schedule(p, m)
        sched.check_valid(require_consecutive=True)
        rep = evaluate_schedule(sched, m=m)
        rows.append((p, m, rep.span, total_exchange_lower_bound(p, m), rep.overloaded_slots))
    return rows


def test_balanced_total_exchange(benchmark):
    rows = benchmark.pedantic(run_balanced, rounds=1, iterations=1)
    emit(
        "E3.1 balanced total exchange: latin-square schedule vs lower bound",
        ["p", "m", "span", "lower bound", "overloaded slots"],
        rows,
    )
    for p, m, span, lb, over in rows:
        assert over == 0
        assert span == lb  # m | p in all sweep points: exactly optimal


def run_chatting():
    rows = []
    for p in (16, 32, 48):
        m = 8
        rel = total_exchange_relation(p, seed=p, max_length=5)
        c_sched, c_pre = chatting_schedule_centralized(rel, m=m)
        d_sched, d_pre = chatting_schedule_distributed(rel, m=m, seed=p + 1)
        c_total = c_pre + evaluate_schedule(c_sched, m=m).completion_time
        d_total = d_pre + evaluate_schedule(d_sched, m=m).completion_time
        rows.append((p, rel.n, c_pre, c_total, d_pre, d_total, c_total / d_total))
    return rows


def test_chatting_centralized_vs_distributed(benchmark):
    rows = benchmark.pedantic(run_chatting, rounds=1, iterations=1)
    emit(
        "E3.1b unbalanced total exchange ('chatting'): centralized vs distributed scheduling (m=8)",
        ["p", "n", "central preproc Θ(p²)", "central total",
         "distrib preproc (tau)", "distrib total", "central/distrib"],
        rows,
    )
    for p, n, c_pre, c_total, d_pre, d_total, adv in rows:
        assert d_total < c_total  # the paper's approach wins end-to-end
        assert adv >= 3.0
        assert c_pre >= p * p  # descriptor gather is the bottleneck
    # the preprocessing gap widens with p: tau is O(p/m + L lg m / lg L)
    # while the centralized gather is Θ(p^2)
    pre_ratios = [r[4] / r[2] for r in rows]
    assert pre_ratios == sorted(pre_ratios, reverse=True)
