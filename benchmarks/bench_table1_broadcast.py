"""T1.2 — Table 1, row 2: broadcasting.

Paper claim: QSM(m) Θ(lg m + p/m) vs QSM(g) Θ(g lg p / lg g); BSP(m)
O(L lg m / lg L + p/m + L) vs BSP(g) Θ(L lg p / lg(L/g)); separation
Θ(lg p / lg g) on the QSM side.
"""


from repro import BSPg, BSPm, MachineParams, QSMg, QSMm
from repro.algorithms import broadcast
from repro.theory import bounds as B
from repro.theory.separations import separation_broadcast_qsm

from _common import emit

SWEEP = [(256, 16, 16.0), (1024, 32, 16.0), (4096, 64, 16.0)]


def run_sweep():
    rows = []
    for p, m, L in SWEEP:
        local, global_ = MachineParams.matched_pair(p=p, m=m, L=L)
        t = {
            "bsp_g": broadcast(BSPg(local), 1).time,
            "bsp_m": broadcast(BSPm(global_), 1).time,
            "qsm_g": broadcast(QSMg(local), 1).time,
            "qsm_m": broadcast(QSMm(global_), 1).time,
        }
        rows.append((p, m, L, local.g, t))
    return rows


def test_broadcast_separation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = []
    for p, m, L, g, t in rows:
        table.append(
            [p, m, g,
             t["qsm_m"], B.broadcast_qsm_m(p, m),
             t["qsm_g"], B.broadcast_qsm_g(p, g),
             t["qsm_g"] / t["qsm_m"], separation_broadcast_qsm(p, g),
             t["bsp_m"], t["bsp_g"]]
        )
        benchmark.extra_info[f"p{p}"] = t
    emit(
        "T1.2 broadcasting (model times vs Θ-bounds)",
        ["p", "m", "g", "QSM(m)", "bound", "QSM(g)", "bound", "QSM ratio",
         "paper sep", "BSP(m)", "BSP(g)"],
        table,
    )
    for p, m, L, g, t in rows:
        # measured times track the Θ-bounds within small constants
        assert t["qsm_m"] <= 6 * B.broadcast_qsm_m(p, m)
        assert t["qsm_g"] <= 6 * B.broadcast_qsm_g(p, g)
        assert t["bsp_m"] <= 6 * B.broadcast_bsp_m(p, m, L)
        # the global model wins on both families
        assert t["qsm_m"] < t["qsm_g"]
        assert t["bsp_m"] < t["bsp_g"]
