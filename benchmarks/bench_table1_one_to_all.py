"""T1.1 — Table 1, row 1: one-to-all personalized communication.

Paper claim: QSM(m) Θ(p) vs QSM(g) Θ(gp); BSP(m) Θ(p+L) vs BSP(g) Θ(gp+L);
separation Θ(g).
"""


from repro import BSPg, BSPm, MachineParams, QSMg, QSMm
from repro.algorithms import one_to_all
from repro.theory.separations import separation_one_to_all

from _common import emit

SWEEP = [(64, 8, 4.0), (256, 16, 8.0), (1024, 32, 8.0)]


def run_sweep():
    rows = []
    for p, m, L in SWEEP:
        local, global_ = MachineParams.matched_pair(p=p, m=m, L=L)
        g = local.g
        t = {
            "bsp_g": one_to_all(BSPg(local)).time,
            "bsp_m": one_to_all(BSPm(global_)).time,
            "qsm_g": one_to_all(QSMg(local)).time,
            "qsm_m": one_to_all(QSMm(global_)).time,
        }
        rows.append((p, m, g, t))
    return rows


def test_one_to_all_separation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = []
    for p, m, g, t in rows:
        table.append(
            [p, m, g, t["qsm_m"], t["qsm_g"], t["qsm_g"] / t["qsm_m"],
             t["bsp_m"], t["bsp_g"], t["bsp_g"] / t["bsp_m"],
             separation_one_to_all(g)]
        )
        benchmark.extra_info[f"p{p}"] = t
    emit(
        "T1.1 one-to-all personalized communication (model times)",
        ["p", "m", "g", "QSM(m)", "QSM(g)", "QSM ratio", "BSP(m)", "BSP(g)", "BSP ratio", "paper Θ(g)"],
        table,
    )
    # Shape: the measured ratio is Θ(g) — within [0.5g, 2g] at every size.
    for p, m, g, t in rows:
        for fam in ("qsm", "bsp"):
            ratio = t[f"{fam}_g"] / t[f"{fam}_m"]
            assert 0.5 * g <= ratio <= 2.0 * g, (p, fam, ratio)
