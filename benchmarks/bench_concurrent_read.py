"""E5.1 — Theorem 5.1: simulating one CRCW PRAM(m) read step on the QSM(m).

The theorem's novel machinery — sorted distribution plus p/m central read
steps — is measured with the sorting stage's cost reported separately (we
substitute a bitonic network for the paper's columnsort; the central-read
phases are exact).  Shape check: the non-sorting component scales like
``p/m`` and per-phase contention never exceeds the designated-phase bound.
"""

import numpy as np

from repro.concurrent_read import simulate_concurrent_read_step
from repro.theory.bounds import crcw_pramm_on_qsm_m_upper

from _common import emit

SWEEP = [(64, 4), (64, 8), (128, 8), (256, 16)]


def run_sweep():
    rows = []
    rng = np.random.default_rng(0)
    for p, m in SWEEP:
        memory = {x: 100 + x for x in range(16)}
        addrs = rng.integers(0, 4, size=p).tolist()  # hot concurrent pattern
        res, vals = simulate_concurrent_read_step(p, m, addrs, memory)
        assert vals == [memory[a] for a in addrs]
        # split phases: bitonic rounds write+read pairs come first
        import math

        lgp = int(math.log2(p))
        bitonic_phases = lgp * (lgp + 1)  # 2 phases per compare round
        sort_time = sum(r.cost for r in res.records[:bitonic_phases])
        central_time = sum(r.cost for r in res.records[bitonic_phases:])
        rows.append(
            (p, m, p / m, res.time, sort_time, central_time,
             crcw_pramm_on_qsm_m_upper(p, m), res.stat_max("kappa"))
        )
    return rows


def test_theorem_5_1(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        "E5.1 CRCW PRAM(m) read step on QSM(m): total / sort / central phases",
        ["p", "m", "p/m", "total", "sort (bitonic, substituted)",
         "central+route", "Θ(p/m)", "max kappa"],
        rows,
    )
    benchmark.extra_info["rows"] = [list(map(float, r)) for r in rows]
    for p, m, pm, total, sort_t, central_t, bound, kappa in rows:
        # the theorem's own machinery is O(p/m): central phases within a
        # constant of the bound
        assert central_t <= 14 * bound + 20, (p, m)
        # contention bounded by m (designated phase) — the central read
        # steps themselves are contention-1 by the sortedness argument
        assert kappa <= m
    # central component scales ~linearly in p/m at fixed p
    c_by_m = {(p, m): c for p, m, _, _, _, c, _, _ in rows}
    assert c_by_m[(64, 4)] > c_by_m[(64, 8)]


def test_theorem_5_1_writes(benchmark):
    """E5.1b — the write half: concurrent writes deduplicated by sorting;
    exactly one write per distinct address, contention 1 throughout."""
    from repro.concurrent_read import simulate_concurrent_write_step

    def run():
        rng = np.random.default_rng(1)
        rows = []
        for p, m in [(64, 8), (128, 8), (128, 16)]:
            addrs = rng.integers(0, 4, size=p).tolist()
            vals = list(range(p))
            res, mem = simulate_concurrent_write_step(
                p, m, addrs, vals, memory={x: None for x in set(addrs)}
            )
            for a in set(addrs):
                winner = min(i for i in range(p) if addrs[i] == a)
                assert mem[a] == winner
            rows.append((p, m, res.time, res.stat_max("kappa"),
                         res.stat_max("overloaded_slots")))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "E5.1b concurrent-write step on QSM(m) (sort + dedup + single writers)",
        ["p", "m", "total time", "max kappa", "overloaded slots"],
        rows,
    )
    for p, m, t, kappa, over in rows:
        assert kappa <= 2
        assert over == 0
