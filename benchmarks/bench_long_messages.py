"""E6.4 — Section 6.1 closing remarks: variable-length messages and
per-message start-up overheads.

Claims reproduced:
* the wrap-avoiding sender's additive term is ``l_hat`` (longest message),
  beating Unbalanced-Consecutive-Send's ``x̄'`` when processors hold many
  short messages;
* with overhead ``o``, completion is within ``(2+eps)`` of
  ``(1 + o/l_bar) n/m`` plus additive ``l_hat + o``.
"""

import numpy as np

from repro.scheduling import (
    evaluate_schedule,
    send_window,
    unbalanced_consecutive_send,
    unbalanced_send_long,
    unbalanced_send_with_overhead,
)
from repro.workloads import variable_length_relation

from _common import emit

P, M, EPS, TRIALS = 256, 32, 0.2, 15


def run_long():
    rel = variable_length_relation(P, 4000, mean_length=5, dist="uniform", seed=0)
    window = send_window(rel.n, M, EPS)
    spans_long, spans_consec = [], []
    for seed in range(TRIALS):
        s_long = unbalanced_send_long(rel, M, EPS, seed=seed)
        s_cons = unbalanced_consecutive_send(rel, M, EPS, seed=seed)
        s_long.check_valid(require_consecutive=True)
        s_cons.check_valid(require_consecutive=True)
        spans_long.append(s_long.span)
        spans_consec.append(s_cons.span)
    return {
        "window": window,
        "l_hat": rel.max_length,
        "x_bar": rel.x_bar,
        "max_span_long": max(spans_long),
        "max_span_consec": max(spans_consec),
    }


def test_long_message_sender(benchmark):
    d = benchmark.pedantic(run_long, rounds=1, iterations=1)
    emit(
        f"E6.4 long-message sender vs consecutive sender (p={P}, m={M}, {TRIALS} seeds)",
        ["window W", "l̂", "x̄", "long sender max span (≤ W+l̂)",
         "consecutive max span (≤ W+x̄')"],
        [[d["window"], d["l_hat"], d["x_bar"], d["max_span_long"], d["max_span_consec"]]],
    )
    benchmark.extra_info.update(d)
    # additive term is l_hat, not x̄'
    assert d["max_span_long"] <= d["window"] + d["l_hat"]
    # and that is a genuine improvement here (x̄ >> l̂)
    assert d["l_hat"] < d["x_bar"]


def run_overhead():
    rel = variable_length_relation(P, 4000, mean_length=6, seed=1)
    rows = []
    for o in (0, 2, 8):
        comps = []
        for seed in range(TRIALS):
            sched, inflated = unbalanced_send_with_overhead(rel, M, o, EPS, seed=seed)
            rep = evaluate_schedule(sched, m=M)
            comps.append(rep.completion_time)
        bound = (
            (1 + EPS) * (1 + o / rel.mean_length) * rel.n / M
            + rel.max_length
            + o
        )
        rows.append((o, float(np.mean(comps)), float(np.max(comps)), bound, inflated.x_bar))
    return rows


def test_overhead_sender(benchmark):
    rows = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    emit(
        "E6.4b start-up-overhead sender: completion vs the paper's bound",
        ["o", "mean completion", "max completion", "(1+eps)(1+o/l̄)n/m + l̂ + o", "inflated x̄"],
        rows,
    )
    for o, mean_c, max_c, bound, x_bar_infl in rows:
        # completion within the paper's bound plus the block-overhang slack
        assert max_c <= bound + x_bar_infl
    # cost grows with o (dummies consume bandwidth) but sublinearly
    assert rows[1][1] > rows[0][1]
    assert rows[2][1] < rows[0][1] * (1 + 8 / 6) * 1.3
