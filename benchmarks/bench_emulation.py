"""E4.3 — the §4 generic PRAM→QSM(m) mapping, measured end-to-end.

Run real EREW PRAM algorithms on the PRAM engine, extract their measured
``(t, w)`` traces, map them onto the QSM(m) via the naive simulation, and
compare with (a) the paper's ``O(n/m + t + w/m)`` formula and (b) the
direct Table-1 algorithms — quantifying how much the generic mapping
leaves on the table for work-suboptimal algorithms (Wyllie) versus
work-optimal ones (balanced-tree prefix).
"""


from repro import MachineParams, QSMm
from repro.algorithms import (
    pram_prefix_sums,
    pram_wyllie_ranks,
    random_list,
    simulate_trace_on_qsm_m,
    summation,
    trace_from_run,
)

from _common import emit

P = 1024
MS = (16, 64, 256)


def run_pipeline():
    rows = []
    prefix_run, _ = pram_prefix_sums([1.0] * P)
    wyllie_run, _ = pram_wyllie_ranks(random_list(P, seed=0))
    traces = {
        "prefix (w=O(n))": trace_from_run(prefix_run),
        "wyllie (w=O(n lg n))": trace_from_run(wyllie_run),
    }
    for name, tr in traces.items():
        for m in MS:
            measured, bound = simulate_trace_on_qsm_m(tr, m)
            _, global_ = MachineParams.matched_pair(p=P, m=m, L=2)
            direct = summation(QSMm(global_), [1.0] * P)[0].time
            rows.append((name, m, tr.t, tr.w, measured, bound, direct))
    return rows


def test_generic_mapping_pipeline(benchmark):
    rows = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
    emit(
        f"E4.3 PRAM-on-QSM(m) generic mapping (p = n = {P}; 'direct' = Table-1 summation)",
        ["algorithm", "m", "t", "w", "mapped time", "n/m + t + w/m", "direct QSM(m)"],
        rows,
    )
    for name, m, t, w, measured, bound, direct in rows:
        # the mapping meets the paper's formula
        assert measured <= 2 * bound + 2, (name, m)
    # work-optimality matters: at every m the mapped prefix algorithm beats
    # the mapped Wyllie by roughly the lg n work gap
    for m in MS:
        mp = next(r[4] for r in rows if r[0].startswith("prefix") and r[1] == m)
        mw = next(r[4] for r in rows if r[0].startswith("wyllie") and r[1] == m)
        assert mw > 1.5 * mp, m
    # and the mapped work-optimal algorithm is within a constant of the
    # hand-built Table-1 QSM(m) implementation
    for name, m, t, w, measured, bound, direct in rows:
        if name.startswith("prefix"):
            assert measured <= 12 * direct, m
