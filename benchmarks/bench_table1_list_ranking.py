"""T1.4 — Table 1, row 4: list ranking (n = p).

Paper claim: QSM(m)/BSP(m) reach O(lg m + n/m) / O(L lg m + n/m) via a
work-efficient algorithm, against Ω(g lg n / lg lg n) for the g-models.

We measure Wyllie (the balanced-communication baseline — near-optimal on
the g-models but Θ(n lg n) message volume) against the randomized
contraction ranker (Θ(n) volume), and check that contraction's *bandwidth*
component scales like n/m while the g-model cost carries the g factor.
"""

import numpy as np

from repro import BSPg, BSPm, MachineParams
from repro.algorithms import (
    list_ranking_contraction,
    list_ranking_wyllie,
    random_list,
    sequential_ranks,
)
from repro.theory import bounds as B

from _common import emit

SWEEP = [(128, 16, 2.0), (256, 32, 2.0), (512, 64, 2.0)]


def run_sweep():
    rows = []
    for p, m, L in SWEEP:
        local, global_ = MachineParams.matched_pair(p=p, m=m, L=L)
        succ = random_list(p, seed=p)
        oracle = sequential_ranks(succ)
        res_wg, r1 = list_ranking_wyllie(BSPg(local), succ)
        res_wm, r2 = list_ranking_wyllie(BSPm(global_), succ)
        res_cg, r3 = list_ranking_contraction(BSPg(local), succ, seed=1)
        res_cm, r4 = list_ranking_contraction(BSPm(global_), succ, seed=1)
        for r in (r1, r2, r3, r4):
            assert np.array_equal(r, oracle)
        rows.append(
            (p, m, local.g, {
                "wyllie_g": res_wg.time,
                "wyllie_m": res_wm.time,
                "contraction_g": res_cg.time,
                "contraction_m": res_cm.time,
                "flits_wyllie": res_wm.total_flits,
                "flits_contraction": res_cm.total_flits,
            })
        )
    return rows


def test_list_ranking_separation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = []
    for p, m, g, t in rows:
        table.append(
            [p, m, g,
             t["contraction_m"], B.list_ranking_bsp_m(p, m, 2.0),
             t["contraction_g"], B.list_ranking_bsp_g_lower(p, g, 2.0),
             t["flits_contraction"], t["flits_wyllie"]]
        )
        benchmark.extra_info[f"p{p}"] = t
    emit(
        "T1.4 list ranking (n = p, model times; message volumes)",
        ["n", "m", "g", "BSP(m) contr", "O bound", "BSP(g) contr",
         "Ω lower", "flits contr", "flits Wyllie"],
        table,
    )
    for p, m, g, t in rows:
        # work-efficiency: contraction moves O(n) flits, Wyllie Θ(n lg n)
        assert t["flits_contraction"] < t["flits_wyllie"]
        assert t["flits_contraction"] <= 8 * p
        # the globally-limited machine beats the locally-limited one on the
        # work-efficient algorithm
        assert t["contraction_m"] <= t["contraction_g"]
        # the g-model respects the converted CRCW lower bound
        assert t["contraction_g"] >= B.list_ranking_bsp_g_lower(p, g, 2.0)
