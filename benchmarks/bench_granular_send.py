"""E6.3 — Theorem 6.4: Unbalanced-Granular-Send completes in ``c·n/m``
w.h.p. in the regime where the union bound must range over granules
(``p < e^{alpha m}``) rather than window slots (``n < e^{alpha m}``) —
i.e. many messages, comparatively small m.
"""

import numpy as np

from repro.scheduling import evaluate_schedule, unbalanced_granular_send
from repro.workloads import uniform_random_relation, zipf_h_relation

from _common import emit

C, TRIALS = 4.0, 20
SWEEP = [
    # (p, n, m): n >> p stresses the slot-level union bound, the granular
    # sender's guarantee only needs p < e^{alpha m}
    (256, 200_000, 64),
    (512, 400_000, 64),
    (512, 400_000, 128),
]


def run_all():
    out = []
    for p, n, m in SWEEP:
        rel = uniform_random_relation(p, n, seed=p + m)
        ratios, overloads = [], 0
        for seed in range(TRIALS):
            sched = unbalanced_granular_send(rel, m, c=C, seed=seed)
            rep = evaluate_schedule(sched, m=m)
            ratios.append(rep.completion_time / (C * rel.n / m))
            overloads += rep.overloaded
        out.append(
            (p, n, m, float(np.mean(ratios)), float(np.max(ratios)), overloads / TRIALS)
        )
    return out


def test_granular_send(benchmark):
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        f"E6.3 Unbalanced-Granular-Send (c={C}, {TRIALS} seeds; T/(c·n/m) should be <= 1)",
        ["p", "n", "m", "mean T/(cn/m)", "max T/(cn/m)", "overload rate"],
        rows,
    )
    for p, n, m, mean_r, max_r, orate in rows:
        # Theorem 6.4: completes within c·n/m
        assert max_r <= 1.0 + 1e-9, (p, n, m)
        assert orate <= 0.15


def test_granule_alignment_preserves_guarantee(benchmark):
    """Coarsening starts to t' = n/p granules must not reintroduce
    overloads even under moderate skew."""

    def run():
        rel = zipf_h_relation(512, 300_000, alpha=1.05, seed=1)
        overloads = 0
        for seed in range(TRIALS):
            rep = evaluate_schedule(
                unbalanced_granular_send(rel, 128, c=C, seed=seed), m=128
            )
            overloads += rep.overloaded
        return overloads / TRIALS

    rate = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nE6.3b zipf overload rate: {rate}")
    assert rate <= 0.2
