"""E4.1 — Theorem 4.1: the BSP(g) broadcast lower bound
``L lg p / (2 lg(2L/g + 1))`` vs the two algorithms of Section 4.2.

We sweep ``L/g`` and check that (a) both the tree broadcast and the
non-receipt single-bit broadcast respect the bound, and (b) the non-receipt
algorithm achieves ``g ceil(log3 p)`` when ``L <= g`` — beating any
receipt-only reading of the problem.
"""

import pytest

from repro import BSPg, MachineParams
from repro.algorithms import broadcast, broadcast_bit_nonreceipt
from repro.theory.bounds import broadcast_bsp_g_lower, broadcast_nonreceipt_upper

from _common import emit

P = 729
SWEEP = [(1.0, 1.0), (8.0, 1.0), (8.0, 8.0), (32.0, 4.0), (64.0, 2.0)]  # (L, g)


def run_sweep():
    rows = []
    for L, g in SWEEP:
        params = MachineParams(p=P, g=g, L=L)
        t_tree = broadcast(BSPg(params), 1).time
        t_bit = broadcast_bit_nonreceipt(BSPg(params), 1).time
        lower = broadcast_bsp_g_lower(P, g, L)
        rows.append((L, g, lower, t_tree, t_bit))
    return rows


def test_theorem_4_1(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit(
        "E4.1 Theorem 4.1: BSP(g) broadcast lower bound vs algorithms (p=729)",
        ["L", "g", "Thm 4.1 lower", "tree bcast", "non-receipt bcast"],
        rows,
    )
    for L, g, lower, t_tree, t_bit in rows:
        # both algorithms live above the lower bound
        assert t_tree >= lower * 0.999
        assert t_bit >= lower * 0.999
        if L <= g:
            # the Section 4.2 algorithm meets its stated upper bound
            assert t_bit == pytest.approx(broadcast_nonreceipt_upper(P, g))
    # non-receipt wins when L <= g (information from silence)
    L, g = 8.0, 8.0
    params = MachineParams(p=P, g=g, L=L)
    assert (
        broadcast_bit_nonreceipt(BSPg(params), 0).time
        <= broadcast(BSPg(params), 0).time
    )
