#!/usr/bin/env bash
# Cluster scaling orchestrator: sweep the same workload across worker
# counts on every backend the box (or cluster) supports, then plot.
#
#   PYTHONPATH=src bash benchmarks/run_cluster_scaling.sh [out.jsonl]
#
# Environment:
#   SCALING_JOBS    local worker ladder            (default "1 2 4 8")
#   SCALING_RANKS   mpirun rank ladder             (default "2 3 5 9";
#                   R ranks = R-1 workers + 1 coordinator)
#   SCALING_TRIALS  per-workload trials            (default 25)
#   MPIRUN          launcher command               (default "mpirun")
#
# Points land as JSON lines in OUT; every line carries a checksum of the
# scientific output, so `sort -u` over the checksum column is the
# cross-backend / cross-host bit-identity check.  plot_scaling.py turns
# the file into a speedup curve (PNG with matplotlib, ASCII without).
set -euo pipefail

OUT="${1:-scaling.jsonl}"
JOBS="${SCALING_JOBS:-1 2 4 8}"
RANKS="${SCALING_RANKS:-2 3 5 9}"
TRIALS="${SCALING_TRIALS:-25}"
MPIRUN="${MPIRUN:-mpirun}"
STEP="$(dirname "$0")/run_scaling_step.py"

rm -f "$OUT"

echo "== serial reference =="
python "$STEP" --backend serial --jobs 1 --trials "$TRIALS" --out "$OUT"

echo "== pool-steal ladder: $JOBS =="
for j in $JOBS; do
    python "$STEP" --backend pool-steal --jobs "$j" --trials "$TRIALS" --out "$OUT"
done

if python -c 'import mpi4py' 2>/dev/null && command -v "$MPIRUN" >/dev/null; then
    echo "== mpi ladder: $RANKS ranks =="
    for r in $RANKS; do
        "$MPIRUN" -n "$r" python "$STEP" --backend mpi --trials "$TRIALS" --out "$OUT"
    done
else
    echo "== mpi skipped (mpi4py or $MPIRUN not available) =="
fi

echo "== identity check =="
SUMS="$(python -c "
import json, sys
print(len({json.loads(l)['checksum'] for l in open('$OUT')}))
")"
if [ "$SUMS" != "1" ]; then
    echo "FAIL: $SUMS distinct output checksums in $OUT (expected 1)" >&2
    exit 1
fi
echo "all points bit-identical"

python "$(dirname "$0")/plot_scaling.py" "$OUT"
