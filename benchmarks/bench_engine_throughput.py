"""Engine throughput regression harness for the fused superstep path.

Measures simulator wall-clock throughput (messages or requests per second)
on three hot profiles and pins the corresponding *model* times, which must
be bit-identical across engine rewrites:

* **routing** — the 40k-message route-verify profile from
  docs/performance.md (Unbalanced-Send schedule executed end-to-end on a
  BSP(m) and delivery-verified; on the fused default this takes the
  compiled-superstep direct path of ``repro.scheduling.execute``).
* **qsm-phases** — a phase-heavy QSM(m) workload (alternating
  ``write_many`` / ``read_many`` phases over dense shared memory, arena
  freeze path).
* **delivery** — a balanced total exchange (p·(p−1) messages through one
  ``_deliver``-dominated superstep).
* **batched-replay** — the routing program compiled once and re-priced
  across a B=64 grid of ``(m, L)`` machines, sequentially
  (``compiled.replay`` per machine) vs. in one
  :func:`repro.core.batched.replay_batch` pass.  Per-trial results must be
  bit-identical (asserted unconditionally); the amortized-throughput floor
  (``BENCH_BATCHED_FLOOR``, default 5x) is gated only when batched pricing
  actually engaged.

The routing profile is additionally measured with the fused path disabled
(``fused_vs_legacy`` ratio), and the qsm profile asserts the
no-allocation-growth contract: steady-state reruns on one machine must not
regrow the preallocated arenas.

Run standalone to (re)generate the regression baseline::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

which writes ``BENCH_engine.json`` (messages/s per profile plus the pinned
model times) to the repository root, or under pytest-benchmark like every
other file in this directory.  ``BENCH_ENGINE_PROFILES=batched-replay``
(comma-separated names) restricts a run to a subset of profiles — the CI
gating job uses it to re-run only the batched leg.
"""

import json
import os
import time

import numpy as np

from repro import BSPm, MachineParams, QSMm
from repro.algorithms.total_exchange import run_total_exchange
from repro.core.engine import fused_default, set_fused_default
from repro.scheduling import unbalanced_send
from repro.scheduling.execute import execute_schedule
from repro.workloads import uniform_random_relation

from _common import emit

# The seed engine (pre-columnar) sustained ~200k msg/s on the routing
# profile (docs/performance.md); the columnar fast path held >= 5x and the
# fused/compiled path must hold >= 15x (>= 3x the columnar baseline).
SEED_ROUTING_MSGS_PER_S = 200_000.0
SPEEDUP_FLOOR = 15.0

# Pinned model times: the optimization contract is that *no* model time
# moves.  These are deterministic (fixed seeds), so equality is exact.
ROUTING_MODEL_TIME = 750.2839547352119

# Amortized per-trial throughput floor for the batched-replay profile:
# replay_batch at B=64 must beat sequential replay by at least this factor
# (only gated when batched pricing actually engaged — identity always is).
BATCHED_SPEEDUP_FLOOR = float(os.environ.get("BENCH_BATCHED_FLOOR", "5.0"))


def _routing_profile():
    rel = uniform_random_relation(256, 40_000, seed=0)
    sched = unbalanced_send(rel, 64, 0.2, seed=1)
    machine = BSPm(MachineParams(p=256, m=64, L=1))
    t0 = time.perf_counter()
    res = execute_schedule(machine, sched)
    dt = time.perf_counter() - t0
    # same schedule through the legacy trampoline path, for the ratio
    previous = fused_default()
    set_fused_default(False)
    try:
        t0 = time.perf_counter()
        res_legacy = execute_schedule(BSPm(MachineParams(p=256, m=64, L=1)), sched)
        dt_legacy = time.perf_counter() - t0
    finally:
        set_fused_default(previous)
    assert res_legacy.time == res.time  # optimization contract
    return {
        "messages": int(rel.n),
        "seconds": dt,
        "msgs_per_s": rel.n / dt,
        "model_time": res.time,
        "legacy_msgs_per_s": rel.n / dt_legacy,
        "fused_vs_legacy": dt_legacy / dt,
    }


def _qsm_program(ctx, rounds, k, span):
    addrs = (ctx.pid * k + np.arange(k, dtype=np.int64)) % span
    values = np.arange(k, dtype=np.int64)
    total = 0
    for r in range(rounds):
        ctx.write_many(addrs, values)
        yield
        handle = ctx.read_many((addrs + (r + 1) * k) % span)
        yield
        total += len(handle)
    return total


def _qsm_profile(p=256, rounds=12, k=24):
    span = p * k
    machine = QSMm(MachineParams(p=p, m=32, L=2))
    machine.use_dense_memory(span)
    machine.run(_qsm_program, args=(rounds, k, span))  # warm the arenas
    arena_grows = (
        [a.grows for a in machine._arenas] if machine._arenas else None
    )
    t0 = time.perf_counter()
    res = machine.run(_qsm_program, args=(rounds, k, span))
    dt = time.perf_counter() - t0
    if arena_grows is not None:
        # no-allocation-growth contract: a steady-state rerun on the same
        # machine must never regrow the preallocated arenas
        assert [a.grows for a in machine._arenas] == arena_grows, (
            "fused arenas grew on a steady-state rerun"
        )
    requests = 2 * rounds * k * p
    return {
        "requests": requests,
        "seconds": dt,
        "reqs_per_s": requests / dt,
        "model_time": res.time,
        "phases": res.supersteps,
    }


def _delivery_profile(p=192):
    machine = BSPm(MachineParams(p=p, m=48, L=1))
    t0 = time.perf_counter()
    res = run_total_exchange(machine)
    dt = time.perf_counter() - t0
    n = p * (p - 1)
    return {
        "messages": n,
        "seconds": dt,
        "msgs_per_s": n / dt,
        "model_time": res.time,
    }


def _batched_profile():
    from repro.core.batched import replay_batch, supports_batched_replay
    from repro.scheduling.execute import compile_schedule

    rel = uniform_random_relation(256, 40_000, seed=0)
    sched = unbalanced_send(rel, 64, 0.2, seed=1)
    compiled = compile_schedule(sched)
    ms = (16, 24, 32, 48, 64, 96, 128, 192)
    Ls = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

    def grid():
        return [BSPm(MachineParams(p=256, m=m, L=L)) for m in ms for L in Ls]

    seq_machines = grid()
    t0 = time.perf_counter()
    seq = [compiled.replay(mach) for mach in seq_machines]
    dt_seq = time.perf_counter() - t0
    bat_machines = grid()
    engaged = supports_batched_replay(bat_machines[0])
    t0 = time.perf_counter()
    bat = replay_batch(compiled, bat_machines)
    dt_bat = time.perf_counter() - t0
    # identity contract — asserted unconditionally, engaged or not
    for mach, a, b in zip(seq_machines, seq, bat):
        assert b.time == a.time, f"model time moved at m={mach.params.m} L={mach.params.L}"
        assert len(b.records) == len(a.records)
        for ra, rb in zip(a.records, b.records):
            assert rb.stats == ra.stats
            assert rb.cost == ra.cost
        if mach.params.m == 64 and mach.params.L == 1.0:
            assert b.time == ROUTING_MODEL_TIME  # the routing profile's cell
    B = len(seq_machines)
    return {
        "trials": B,
        "engaged": engaged,
        "seq_seconds": dt_seq,
        "batched_seconds": dt_bat,
        "trials_per_s": B / dt_bat,
        "amortized_trial_ms": 1e3 * dt_bat / B,
        "batched_speedup": dt_seq / dt_bat,
    }


_PROFILES = {
    "routing": _routing_profile,
    "qsm-phases": _qsm_profile,
    "delivery": _delivery_profile,
    "batched-replay": _batched_profile,
}


def run_all():
    names = os.environ.get("BENCH_ENGINE_PROFILES", "")
    selected = [s.strip() for s in names.split(",") if s.strip()] or list(_PROFILES)
    unknown = sorted(set(selected) - set(_PROFILES))
    if unknown:
        raise SystemExit(
            f"unknown BENCH_ENGINE_PROFILES {unknown}; choose from {sorted(_PROFILES)}"
        )
    return {name: _PROFILES[name]() for name in selected}


def _report(data):
    rows = []
    if "routing" in data:
        rows.append(["routing (40k route-verify)", data["routing"]["messages"],
                     data["routing"]["seconds"], data["routing"]["msgs_per_s"],
                     data["routing"]["model_time"]])
        rows.append(["routing (legacy trampoline)", data["routing"]["messages"],
                     "-", data["routing"]["legacy_msgs_per_s"],
                     data["routing"]["model_time"]])
    if "qsm-phases" in data:
        rows.append(["qsm phases (dense mem)", data["qsm-phases"]["requests"],
                     data["qsm-phases"]["seconds"], data["qsm-phases"]["reqs_per_s"],
                     data["qsm-phases"]["model_time"]])
    if "delivery" in data:
        rows.append(["delivery (total exchange)", data["delivery"]["messages"],
                     data["delivery"]["seconds"], data["delivery"]["msgs_per_s"],
                     data["delivery"]["model_time"]])
    if "batched-replay" in data:
        b = data["batched-replay"]
        rows.append([f"batched replay (B={b['trials']})", b["trials"],
                     b["batched_seconds"], b["trials_per_s"], "-"])
    emit(
        "engine throughput (fused superstep path)",
        ["profile", "volume", "seconds", "throughput/s", "model time"],
        rows,
    )
    if "routing" in data:
        print(f"fused vs legacy (routing): {data['routing']['fused_vs_legacy']:.2f}x")
    if "batched-replay" in data:
        b = data["batched-replay"]
        print(
            f"batched vs sequential replay (B={b['trials']}): "
            f"{b['batched_speedup']:.1f}x "
            f"({b['amortized_trial_ms']:.3f} ms/trial amortized, "
            f"engaged={b['engaged']})"
        )


def _check(data):
    if "routing" in data:
        # Optimizations must never move a model time.
        assert data["routing"]["model_time"] == ROUTING_MODEL_TIME
        # Acceptance floor: >= 5x the seed engine's routing throughput.
        speedup = data["routing"]["msgs_per_s"] / SEED_ROUTING_MSGS_PER_S
        assert speedup >= SPEEDUP_FLOOR, (
            f"routing throughput regressed: {data['routing']['msgs_per_s']:.0f} msg/s "
            f"is only {speedup:.1f}x the seed baseline (need >= {SPEEDUP_FLOOR}x)"
        )
    if "batched-replay" in data:
        b = data["batched-replay"]
        # the identity contract was asserted while profiling; the speedup
        # floor applies only when batched pricing actually engaged
        if b["engaged"]:
            assert b["batched_speedup"] >= BATCHED_SPEEDUP_FLOOR, (
                f"batched replay at B={b['trials']} is only "
                f"{b['batched_speedup']:.1f}x sequential "
                f"(need >= {BATCHED_SPEEDUP_FLOOR}x)"
            )


def write_baseline(path="BENCH_engine.json"):
    data = run_all()
    if "routing" in data:
        data["routing"]["speedup_vs_seed"] = (
            data["routing"]["msgs_per_s"] / SEED_ROUTING_MSGS_PER_S
        )
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    return data


def test_engine_throughput(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _report(data)
    benchmark.extra_info.update(data)
    _check(data)


if __name__ == "__main__":
    out = os.environ.get("BENCH_ENGINE_JSON", "BENCH_engine.json")
    result = write_baseline(out)
    _report(result)
    _check(result)
    tail = ""
    if "routing" in result:
        tail = f"  (routing speedup vs seed: {result['routing']['speedup_vs_seed']:.1f}x)"
    print(f"\nwrote {out}{tail}")
