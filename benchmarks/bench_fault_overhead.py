"""Fault-hook overhead guard: the disabled path must stay free.

The fault layer's contract (docs/robustness.md) is that a machine without an
injector — and one with a *null* plan attached — pays nothing measurable for
the hooks added to the engine's barrier loop.  This harness runs the same
40k-flit route-verify profile as ``bench_engine_throughput.py`` three ways:

* **baseline** — no injector attached (the hook's ``is not None`` fast path);
* **null-plan** — an injector built from an all-zero :class:`FaultPlan`
  (the hook fires but must return the sent batch unchanged);
* **audited** — reported for context only, never gated (the auditor re-prices
  every superstep, so it is legitimately slower).

and asserts that the first two hold the routing throughput within 3% of the
pinned floor from ``BENCH_engine.json``'s acceptance contract
(``SEED_ROUTING_MSGS_PER_S × SPEEDUP_FLOOR``), and that all three leave the
pinned model time bit-identical — faults and auditing may never move costs.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py

or under pytest-benchmark like every other file in this directory.
"""

import time

from repro import BSPm, MachineParams
from repro.faults import FaultPlan
from repro.scheduling import unbalanced_send
from repro.scheduling.execute import execute_schedule
from repro.workloads import uniform_random_relation

from _common import emit
from bench_engine_throughput import (
    ROUTING_MODEL_TIME,
    SEED_ROUTING_MSGS_PER_S,
    SPEEDUP_FLOOR,
)

# The disabled fault path may cost at most 3% of the engine-throughput
# acceptance floor (the floor already absorbs machine noise; 3% is the
# hook's whole budget on top of it).
THROUGHPUT_FLOOR = SEED_ROUTING_MSGS_PER_S * SPEEDUP_FLOOR
OVERHEAD_TOLERANCE = 0.03

_REPEATS = 3  # best-of-N wall-clock to shed scheduler noise


def _route_once(injector_plan=None, audit=False):
    rel = uniform_random_relation(256, 40_000, seed=0)
    sched = unbalanced_send(rel, 64, 0.2, seed=1)
    machine = BSPm(MachineParams(p=256, m=64, L=1))
    if injector_plan is not None:
        machine.inject_faults(injector_plan)
    best = float("inf")
    model_time = None
    for _ in range(_REPEATS):
        if machine.fault_injector is not None:
            machine.fault_injector.reset()
        t0 = time.perf_counter()
        res = execute_schedule(machine, sched, audit=audit)
        best = min(best, time.perf_counter() - t0)
        model_time = res.time
    return {
        "messages": int(rel.n),
        "seconds": best,
        "msgs_per_s": rel.n / best,
        "model_time": model_time,
    }


def run_all():
    return {
        "baseline": _route_once(),
        "null_plan": _route_once(injector_plan=FaultPlan()),
        "audited": _route_once(audit=True),
    }


def _report(data):
    emit(
        "fault-hook overhead (40k route-verify profile)",
        ["variant", "messages", "seconds", "msgs/s", "model time"],
        [
            [name, d["messages"], d["seconds"], d["msgs_per_s"], d["model_time"]]
            for name, d in data.items()
        ],
    )


def _check(data):
    floor = THROUGHPUT_FLOOR * (1.0 - OVERHEAD_TOLERANCE)
    for variant in ("baseline", "null_plan"):
        d = data[variant]
        # The hook may never move a model time, enabled or not.
        assert d["model_time"] == ROUTING_MODEL_TIME, (
            f"{variant}: model time {d['model_time']!r} != pinned "
            f"{ROUTING_MODEL_TIME!r}"
        )
        assert d["msgs_per_s"] >= floor, (
            f"{variant}: {d['msgs_per_s']:.0f} msg/s is below "
            f"{floor:.0f} (the {THROUGHPUT_FLOOR:.0f} msg/s acceptance floor "
            f"minus the {OVERHEAD_TOLERANCE:.0%} fault-hook budget)"
        )
    # Auditing re-prices every superstep, so only the cost pin applies.
    assert data["audited"]["model_time"] == ROUTING_MODEL_TIME


def test_fault_hook_overhead(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _report(data)
    benchmark.extra_info.update(data)
    _check(data)


if __name__ == "__main__":
    result = run_all()
    _report(result)
    _check(result)
    ratio = result["null_plan"]["msgs_per_s"] / result["baseline"]["msgs_per_s"]
    print(f"\nnull-plan/baseline throughput ratio: {ratio:.3f}")
