"""E4.2 — regenerate Table 1 as printed (analytic bounds, all 10 rows).

This harness prints the paper's table populated numerically at a concrete
parameter point and asserts the separation column ordering.  The
separation-vs-p sweep fans its machine sizes out through ``repro.sweep``
(``BENCH_JOBS`` selects the pool width).
"""

import os

import pytest

from repro.sweep import SweepSpec, run_sweep
from repro.theory import render_table1, table1_rows

JOBS = int(os.environ.get("BENCH_JOBS", "1"))


def _table1_point(p, seed):
    """Bound ratios for one machine size (module-level for pool dispatch;
    deterministic — ``seed`` is the sweep contract, unused)."""
    rows = table1_rows(p=p, L=4.0, m=max(4, p // 16))
    return {(r.problem, r.family): r.bound_ratio for r in rows}


def test_table1_regeneration(benchmark):
    rows = benchmark.pedantic(
        lambda: table1_rows(p=4096, L=4.0, m=256), rounds=1, iterations=1
    )
    print("\n" + render_table1(p=4096, L=4.0, m=256))
    assert len(rows) == 10
    for row in rows:
        # every globally-limited bound beats its locally-limited partner
        assert row.strong_bound < row.weak_bound, row.problem
        assert row.separation > 1.0


def test_table1_separation_scales_with_p(benchmark):
    def sweep():
        ps = (2**10, 2**14, 2**18)
        spec = SweepSpec(
            name="bench_table1_scaling",
            fn=_table1_point,
            grid={f"p={p}": {"p": p} for p in ps},
            seed=0,
        )
        return dict(zip(ps, run_sweep(spec, jobs=JOBS).results))

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # the one-to-all ratio is exactly g = 16 at every size
    for p, ratios in data.items():
        assert ratios[("One-to-all", "QSM")] == pytest.approx(16.0)
    # the parity/list-ranking/sorting ratios grow with p (lg n / lg lg n)
    ps = sorted(data)
    for key in [("Parity/Summation", "QSM"), ("Sorting", "QSM")]:
        vals = [data[p][key] for p in ps]
        assert vals[0] < vals[-1]
