"""E4.2 — regenerate Table 1 as printed (analytic bounds, all 10 rows).

This harness prints the paper's table populated numerically at a concrete
parameter point and asserts the separation column ordering.
"""

import pytest

from repro.theory import render_table1, table1_rows


def test_table1_regeneration(benchmark):
    rows = benchmark.pedantic(
        lambda: table1_rows(p=4096, L=4.0, m=256), rounds=1, iterations=1
    )
    print("\n" + render_table1(p=4096, L=4.0, m=256))
    assert len(rows) == 10
    for row in rows:
        # every globally-limited bound beats its locally-limited partner
        assert row.strong_bound < row.weak_bound, row.problem
        assert row.separation > 1.0


def test_table1_separation_scales_with_p(benchmark):
    def sweep():
        out = {}
        for p in (2**10, 2**14, 2**18):
            rows = table1_rows(p=p, L=4.0, m=max(4, p // 16))
            out[p] = {(r.problem, r.family): r.bound_ratio for r in rows}
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # the one-to-all ratio is exactly g = 16 at every size
    for p, ratios in data.items():
        assert ratios[("One-to-all", "QSM")] == pytest.approx(16.0)
    # the parity/list-ranking/sorting ratios grow with p (lg n / lg lg n)
    ps = sorted(data)
    for key in [("Parity/Summation", "QSM"), ("Sorting", "QSM")]:
        vals = [data[p][key] for p in ps]
        assert vals[0] < vals[-1]
