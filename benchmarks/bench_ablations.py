"""Ablations of the design choices DESIGN.md calls out.

A1 — penalty family: linear vs polynomial vs exponential overload charges
     (the lower-bound/upper-bound asymmetry of Section 2).
A2 — epsilon: window slack vs overload probability vs completion ratio.
A3 — known n vs computed n: the tau term's share of completion time.
A4 — sending template: consecutive vs spread within the window.
A5 — granularity: the granular sender's window constant c.
"""

import numpy as np
import pytest

from repro import EXPONENTIAL, LINEAR, MachineParams, PolynomialPenalty
from repro.scheduling import (
    evaluate_schedule,
    naive_schedule,
    tau_bound,
    unbalanced_granular_send,
    unbalanced_send,
)
from repro.workloads import uniform_random_relation

from _common import emit

P, N, M = 512, 50_000, 64


def test_ablation_penalty_family(benchmark):
    def run():
        rel = uniform_random_relation(P, N, seed=0)
        sched = naive_schedule(rel)  # heavily overloaded on purpose
        rows = []
        for pen in (LINEAR, PolynomialPenalty(2.0), PolynomialPenalty(4.0), EXPONENTIAL):
            rep = evaluate_schedule(sched, m=M, penalty=pen)
            rows.append((pen.name, getattr(pen, "degree", ""), rep.comm_time, rep.ratio))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "A1 penalty family on a naive (overloaded) schedule",
        ["penalty", "degree", "comm time", "T/OPT"],
        rows,
    )
    comms = {name: c for name, _deg, c, _r in rows}
    # the polynomial family is ordered by degree, and both dominate linear;
    # the exponential only overtakes polynomials at large overload ratios,
    # so it is compared against linear only
    degs = [r[2] for r in rows if r[0] in ("linear", "polynomial")]
    assert degs == sorted(degs)
    assert comms["exponential"] >= comms["linear"]


def test_ablation_epsilon(benchmark):
    def run():
        rel = uniform_random_relation(P, N, seed=1)
        rows = []
        for eps in (0.02, 0.05, 0.1, 0.25, 0.5):
            overloads, ratios = 0, []
            for seed in range(15):
                rep = evaluate_schedule(unbalanced_send(rel, M, eps, seed=seed), m=M)
                overloads += rep.overloaded
                ratios.append(rep.ratio)
            rows.append((eps, overloads / 15, float(np.mean(ratios))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "A2 epsilon: overload probability vs completion ratio",
        ["epsilon", "overload rate", "mean T/OPT"],
        rows,
    )
    # bigger eps -> fewer overloads but larger deterministic slack
    assert rows[0][1] >= rows[-1][1]
    assert rows[-1][2] >= rows[1][2] * 0.99


def test_ablation_tau_share(benchmark):
    def run():
        rel = uniform_random_relation(P, N, seed=2)
        params = MachineParams(p=P, m=M, L=8)
        tau = tau_bound(params)
        rows = []
        for n_known in (True, False):
            rep = evaluate_schedule(
                unbalanced_send(rel, M, 0.1, seed=3),
                m=M,
                tau=0.0 if n_known else tau,
            )
            rows.append(
                ("known" if n_known else "computed", rep.completion_time,
                 rep.tau, rep.tau / rep.completion_time)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "A3 known n vs computed n (tau term share)",
        ["n", "completion", "tau", "tau share"],
        rows,
    )
    # for n >> p the tau term is negligible — the paper's "important case"
    assert rows[1][3] < 0.1


def test_ablation_template(benchmark):
    def run():
        # concentration regime: eps^2 m >> 1 so both templates stay clean
        m, eps = 256, 0.25
        rel = uniform_random_relation(P, N, seed=4)
        rows = []
        for template in ("consecutive", "spread"):
            overloads = 0
            for seed in range(15):
                rep = evaluate_schedule(
                    unbalanced_send(rel, m, eps, seed=seed, template=template), m=m
                )
                overloads += rep.overloaded
            rows.append((template, overloads / 15))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("A4 sending template", ["template", "overload rate"], rows)
    # both templates respect the Chernoff analysis
    for template, rate in rows:
        assert rate <= 0.3


def test_ablation_granularity_constant(benchmark):
    def run():
        rel = uniform_random_relation(P, 200_000, seed=5)
        rows = []
        for c in (2.0, 3.0, 4.0, 8.0):
            overloads, spans = 0, []
            for seed in range(10):
                sched = unbalanced_granular_send(rel, M, c=c, seed=seed)
                rep = evaluate_schedule(sched, m=M)
                overloads += rep.overloaded
                spans.append(rep.span)
            rows.append((c, overloads / 10, float(np.mean(spans)), c * rel.n / M))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "A5 granular window constant c",
        ["c", "overload rate", "mean span", "c·n/m"],
        rows,
    )
    # larger c buys lower overload probability at the cost of span
    assert rows[-1][1] <= rows[0][1]
    assert rows[-1][2] >= rows[0][2]


def test_ablation_sorting_algorithm(benchmark):
    """A6 — deterministic columnsort vs randomized sample sort on the
    BSP(m): same Θ(n/m) communication shape, different constants and
    guarantee types."""
    import numpy as np

    from repro import BSPm
    from repro.algorithms import columnsort, sample_sort

    def run():
        rng = np.random.default_rng(0)
        rows = []
        for n in (1024, 4096):
            keys = rng.random(n)
            mach_c = BSPm(MachineParams(p=64, m=8, L=2))
            res_c, out_c = columnsort(mach_c, keys)
            mach_s = BSPm(MachineParams(p=64, m=8, L=2))
            res_s, out_s = sample_sort(mach_s, keys, seed=1)
            assert np.array_equal(out_c, np.sort(keys))
            assert np.array_equal(out_s, np.sort(keys))
            rows.append(
                (n, res_c.time, res_s.time, res_c.total_flits, res_s.total_flits)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "A6 sorting algorithm: columnsort (deterministic) vs sample sort (randomized)",
        ["n", "columnsort time", "sample sort time", "flits (col)", "flits (smp)"],
        rows,
    )
    for n, t_c, t_s, f_c, f_s in rows:
        # both land in the same ballpark; columnsort ships each key through
        # 6 permutations, sample sort through 3 routing phases
        assert 0.1 <= t_c / t_s <= 10
    # both scale ~linearly in n at fixed m
    assert rows[1][1] / rows[0][1] == pytest.approx(4.0, rel=0.5)
    assert rows[1][2] / rows[0][2] == pytest.approx(4.0, rel=0.6)
