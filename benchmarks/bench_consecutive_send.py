"""E6.2 — Theorem 6.3: Unbalanced-Consecutive-Send completes in
``max((2+eps)n/m, x̄, ȳ) + tau`` w.h.p. with every message's flits in
consecutive slots.
"""

import numpy as np

from repro.scheduling import (
    evaluate_schedule,
    offline_lower_bound,
    unbalanced_consecutive_send,
)
from repro.workloads import uniform_random_relation, variable_length_relation

from _common import emit

P, M, EPS, TRIALS = 512, 128, 0.4, 20


def run_all():
    out = {}
    cases = {
        "unit msgs": uniform_random_relation(P, 40_000, seed=0),
        "geometric lens": variable_length_relation(P, 6000, mean_length=7, seed=1),
        "pareto lens": variable_length_relation(P, 4000, mean_length=10, dist="pareto", seed=2),
    }
    for name, rel in cases.items():
        lb = offline_lower_bound(rel, M)
        ratios, overloads, max_span = [], 0, 0
        for seed in range(TRIALS):
            sched = unbalanced_consecutive_send(rel, M, EPS, seed=seed)
            sched.check_valid(require_consecutive=True)
            rep = evaluate_schedule(sched, m=M)
            ratios.append(rep.completion_time / max(lb, 1))
            overloads += rep.overloaded
            max_span = max(max_span, rep.span)
        out[name] = {
            "n": rel.n,
            "x_bar": rel.x_bar,
            "lower": lb,
            "mean_ratio": float(np.mean(ratios)),
            "max_ratio": float(np.max(ratios)),
            "overload_rate": overloads / TRIALS,
            "max_span": max_span,
        }
    return out


def test_consecutive_send(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit(
        f"E6.2 Unbalanced-Consecutive-Send (p={P}, m={M}, eps={EPS}, {TRIALS} seeds)",
        ["workload", "n", "x̄", "OPT span", "mean T/OPT", "max T/OPT", "overload rate", "max span"],
        [
            [k, v["n"], v["x_bar"], v["lower"], v["mean_ratio"], v["max_ratio"],
             v["overload_rate"], v["max_span"]]
            for k, v in data.items()
        ],
    )
    benchmark.extra_info.update(data)
    for name, v in data.items():
        # Theorem 6.3 shape: within (2+eps)·OPT (window + block overhang)
        assert v["max_ratio"] <= 2 + EPS + 0.1, name
        assert v["overload_rate"] <= 0.2, name
