"""Sweep-engine scaling harness: serial vs process-pool trial fan-out.

Runs the 100-trial Unbalanced-Send experiment (4 workloads x 25 trials,
the Theorem-6.2 reproduction) through ``repro.sweep`` at 1/2/4/8 jobs and
records, per job count:

* wall-clock elapsed and speedup over the serial run,
* worker utilization and memo-cache hit rate (sweep telemetry),
* whether the output dict is **bit-identical** to the serial run (it must
  be — trials are pure and carry derived per-trial seeds, so the pool
  changes only wall-clock, never results).

Run standalone to (re)generate the scaling baseline::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py

which writes ``BENCH_sweep.json`` to the repository root, or under
pytest-benchmark like every other file in this directory.  Environment
knobs for constrained boxes (the CI smoke uses both): ``BENCH_SWEEP_JOBS``
(comma list, default ``1,2,4,8``) and ``BENCH_SWEEP_TRIALS`` (per-workload
trials, default 25).

The speedup floor (>= 2.5x at 4 jobs) is asserted only when the machine
actually has >= 4 usable cores; identity is asserted everywhere.
"""

import json
import os
import time

from repro.experiments import unbalanced_send_vs_optimal
from repro.sweep import resolve_jobs

from _common import emit

#: the >= 100-trial experiment: 4 workloads x TRIALS trials
P, M, N, EPS = 1024, 128, 60_000, 0.2
TRIALS = int(os.environ.get("BENCH_SWEEP_TRIALS", "25"))
SEED = 0
JOBS = [int(j) for j in os.environ.get("BENCH_SWEEP_JOBS", "1,2,4,8").split(",")]

#: acceptance floor: >= 2.5x at 4 jobs (checked when >= 4 cores exist)
SPEEDUP_FLOOR_4 = 2.5


def _run(jobs: int):
    t0 = time.perf_counter()
    out = unbalanced_send_vs_optimal(
        p=P, m=M, n=N, epsilon=EPS, trials=TRIALS, seed=SEED, jobs=jobs
    )
    return out, time.perf_counter() - t0


def run_all():
    cores = resolve_jobs(0)
    total_trials = 4 * TRIALS
    data = {
        "experiment": "unbalanced_send",
        "params": {"p": P, "m": M, "n": N, "epsilon": EPS,
                   "trials_per_workload": TRIALS, "total_trials": total_trials,
                   "seed": SEED},
        "cores": cores,
        "jobs": {},
    }
    serial_out, serial_s = None, None
    for jobs in JOBS:
        out, elapsed = _run(jobs)
        if serial_out is None:
            serial_out, serial_s = out, elapsed
        data["jobs"][str(jobs)] = {
            "elapsed_s": elapsed,
            "speedup_vs_serial": serial_s / elapsed,
            "trials_per_s": total_trials / elapsed,
            "identical_to_serial": out == serial_out,
        }
    return data


def _report(data):
    emit(
        f"sweep scaling: unbalanced_send, {data['params']['total_trials']} trials "
        f"({data['cores']} usable cores)",
        ["jobs", "elapsed s", "speedup", "trials/s", "identical"],
        [
            [jobs, round(rec["elapsed_s"], 3), round(rec["speedup_vs_serial"], 2),
             round(rec["trials_per_s"], 1), rec["identical_to_serial"]]
            for jobs, rec in data["jobs"].items()
        ],
    )


def _check(data):
    # The invariant that makes the pool safe to use anywhere: results never
    # depend on the job count.
    for jobs, rec in data["jobs"].items():
        assert rec["identical_to_serial"], (
            f"jobs={jobs} output diverged from the serial run — "
            "a trial is impure or seed derivation is order-dependent"
        )
    # The speedup claim is only measurable where parallel hardware exists.
    if data["cores"] >= 4 and "4" in data["jobs"]:
        speedup = data["jobs"]["4"]["speedup_vs_serial"]
        assert speedup >= SPEEDUP_FLOOR_4, (
            f"4-job speedup {speedup:.2f}x below the {SPEEDUP_FLOOR_4}x floor "
            f"on a {data['cores']}-core machine"
        )


def write_baseline(path="BENCH_sweep.json"):
    data = run_all()
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    return data


def test_parallel_scaling(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _report(data)
    benchmark.extra_info.update(data)
    _check(data)


if __name__ == "__main__":
    out_path = os.environ.get("BENCH_SWEEP_JSON", "BENCH_sweep.json")
    result = write_baseline(out_path)
    _report(result)
    _check(result)
    best = max(rec["speedup_vs_serial"] for rec in result["jobs"].values())
    print(f"\nwrote {out_path}  (best speedup: {best:.2f}x on {result['cores']} cores)")
