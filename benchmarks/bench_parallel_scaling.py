"""Sweep-engine scaling harness: the executor backends head to head.

Runs the 100-trial Unbalanced-Send experiment (4 workloads x 25 trials,
the Theorem-6.2 reproduction) through every requested ``repro.sweep``
backend at 1/2/4/8 jobs and records, per (backend, jobs) point:

* wall-clock elapsed and speedup over the one serial reference run,
* worker count, worker utilization, and steal count (sweep telemetry),
* whether the output dict is **bit-identical** to the serial run (it
  must be — trials are pure and carry derived per-trial seeds, so a
  backend changes only wall-clock, never results),
* whether the speedup floor was *asserted* for that point — a floor is
  only meaningful where the hardware can express it, so points with
  ``jobs > cores`` record ``speedup_asserted: false`` and are exempt.

``cores`` is recorded prominently at the top level: a speedup table
without the core count that produced it is unreadable (1.0x at 4 jobs is
a bug on a 16-core box and expected on a 1-core one).

Run standalone to (re)generate the scaling baseline::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py

which writes ``BENCH_sweep.json`` to the repository root, or under
pytest-benchmark like every other file in this directory.  Environment
knobs (the CI smoke uses all of them):

``BENCH_SWEEP_JOBS``
    comma list of job counts, default ``1,2,4,8``;
``BENCH_SWEEP_TRIALS``
    per-workload trials, default 25;
``BENCH_SWEEP_BACKENDS``
    comma list of backends, default ``serial,pool-steal`` (add ``mpi``
    on a box with mpi4py — see ``run_cluster_scaling.sh`` for the
    multi-rank harness);
``BENCH_SWEEP_FLOOR``
    speedup floor asserted at 4 jobs, default 2.5;
``BENCH_SWEEP_BATCHED_FLOOR``
    sweep-level speedup floor of the batched block, default 3.0.

Identity is asserted everywhere; the floor only where ``cores >= jobs``.

The run also times the **batched** block: ``pricing_ablation`` (one
compiled routing program re-priced over a 64-cell ``(m, L)`` grid) with
``batch=False`` vs ``batch=True`` on the serial backend.  Cell outputs
must be identical (always asserted); the batched floor is gated only when
fingerprint grouping actually engaged.
"""

import json
import os
import time

from repro.experiments import unbalanced_send_vs_optimal
from repro.sweep import available_backends, resolve_jobs

from _common import emit

#: the >= 100-trial experiment: 4 workloads x TRIALS trials
P, M, N, EPS = 1024, 128, 60_000, 0.2
TRIALS = int(os.environ.get("BENCH_SWEEP_TRIALS", "25"))
SEED = 0
JOBS = [int(j) for j in os.environ.get("BENCH_SWEEP_JOBS", "1,2,4,8").split(",")]
BACKENDS = [
    b.strip()
    for b in os.environ.get("BENCH_SWEEP_BACKENDS", "serial,pool-steal").split(",")
    if b.strip()
]

#: acceptance floor at 4 jobs (asserted only where >= 4 cores exist)
SPEEDUP_FLOOR_4 = float(os.environ.get("BENCH_SWEEP_FLOOR", "2.5"))

#: sweep-level floor of batch=True over batch=False on pricing_ablation
#: (asserted only when fingerprint grouping engaged; identity always is)
BATCHED_SPEEDUP_FLOOR = float(os.environ.get("BENCH_SWEEP_BATCHED_FLOOR", "3.0"))


def _run(backend: str, jobs: int):
    t0 = time.perf_counter()
    out = unbalanced_send_vs_optimal(
        p=P, m=M, n=N, epsilon=EPS, trials=TRIALS, seed=SEED, jobs=jobs,
        backend=backend, include_telemetry=True,
    )
    elapsed = time.perf_counter() - t0
    telemetry = out.pop("sweep_telemetry")  # timing data, excluded from identity
    return out, telemetry, elapsed


def _run_batched():
    """pricing_ablation with batching off vs on: the whole-sweep view of
    batched replay (setup + grouping + dispatch included, unlike the
    engine bench's pure replay loop)."""
    from repro.experiments import pricing_ablation

    t0 = time.perf_counter()
    off = pricing_ablation(seed=SEED, jobs=1, batch=False)
    dt_off = time.perf_counter() - t0
    t0 = time.perf_counter()
    on = pricing_ablation(seed=SEED, jobs=1, batch=True)
    dt_on = time.perf_counter() - t0
    stats = on.pop("batch")
    off.pop("batch")
    return {
        "trials": len(on["cells"]),
        "elapsed_off_s": dt_off,
        "elapsed_on_s": dt_on,
        "batched_speedup": dt_off / dt_on,
        "identical": on == off,
        "engaged": bool(stats.get("enabled")),
        "amortization": stats.get("amortization"),
        "groups": stats.get("groups"),
        "batched_trials": stats.get("batched_trials"),
    }


def run_all():
    cores = resolve_jobs(0)
    total_trials = 4 * TRIALS
    data = {
        "experiment": "unbalanced_send",
        "params": {"p": P, "m": M, "n": N, "epsilon": EPS,
                   "trials_per_workload": TRIALS, "total_trials": total_trials,
                   "seed": SEED},
        "cores": cores,
        "speedup_floor_4": SPEEDUP_FLOOR_4,
        "backends": {},
    }
    serial_out, serial_tel, serial_s = _run("serial", 1)
    for backend in BACKENDS:
        # serial has no worker pool: one reference point, not a ladder
        job_list = [1] if backend == "serial" else JOBS
        jobs_block = {}
        for jobs in job_list:
            if backend == "serial":
                # reuse the reference run rather than timing serial twice
                out, telemetry, elapsed = serial_out, serial_tel, serial_s
            else:
                out, telemetry, elapsed = _run(backend, jobs)
            be = telemetry["backend"]
            jobs_block[str(jobs)] = {
                "elapsed_s": elapsed,
                "speedup_vs_serial": serial_s / elapsed,
                "trials_per_s": total_trials / elapsed,
                "identical_to_serial": out == serial_out,
                "workers": be["pool_workers"],
                "utilization": telemetry["utilization"],
                "steals": be["steals"],
                "worker_deaths": be["worker_deaths"],
                "speedup_asserted": bool(
                    backend != "serial" and jobs == 4 and cores >= jobs
                ),
            }
        data["backends"][backend] = {"jobs": jobs_block}
    data["serial_elapsed_s"] = serial_s
    data["batched"] = _run_batched()
    return data


def _report(data):
    rows = []
    for backend, block in data["backends"].items():
        for jobs, rec in block["jobs"].items():
            rows.append([
                backend, jobs, round(rec["elapsed_s"], 3),
                round(rec["speedup_vs_serial"], 2),
                rec["workers"], round(rec["utilization"], 2),
                rec["steals"], rec["identical_to_serial"],
                rec["speedup_asserted"],
            ])
    emit(
        f"sweep scaling: unbalanced_send, {data['params']['total_trials']} trials "
        f"({data['cores']} usable cores)",
        ["backend", "jobs", "elapsed s", "speedup", "workers", "util",
         "steals", "identical", "floor asserted"],
        rows,
    )
    b = data.get("batched")
    if b:
        print(
            f"batched sweep (pricing_ablation, {b['trials']} trials): "
            f"{b['batched_speedup']:.2f}x over per-trial dispatch "
            f"(amortization {b['amortization']:.1f}, identical={b['identical']}, "
            f"engaged={b['engaged']})"
        )


def _check(data):
    cores = data["cores"]
    for backend, block in data["backends"].items():
        for jobs, rec in block["jobs"].items():
            # The invariant that makes any backend safe to pick: results
            # never depend on the backend or the job count.
            assert rec["identical_to_serial"], (
                f"backend={backend} jobs={jobs} output diverged from the "
                "serial run — a trial is impure or seed derivation is "
                "order-dependent"
            )
            # The speedup claim is only measurable where parallel hardware
            # exists: never assert a floor with fewer cores than jobs.
            if not rec["speedup_asserted"]:
                continue
            speedup = rec["speedup_vs_serial"]
            assert speedup >= SPEEDUP_FLOOR_4, (
                f"backend={backend} 4-job speedup {speedup:.2f}x below the "
                f"{SPEEDUP_FLOOR_4}x floor on a {cores}-core machine"
            )
    b = data.get("batched")
    if b:
        assert b["identical"], (
            "batched sweep output diverged from per-trial dispatch — "
            "batch_run broke the bit-identity contract"
        )
        if b["engaged"]:
            assert b["batched_speedup"] >= BATCHED_SPEEDUP_FLOOR, (
                f"batched sweep speedup {b['batched_speedup']:.2f}x below "
                f"the {BATCHED_SPEEDUP_FLOOR}x floor"
            )


def write_baseline(path="BENCH_sweep.json"):
    data = run_all()
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2)
        fh.write("\n")
    return data


def test_parallel_scaling(benchmark):
    data = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _report(data)
    benchmark.extra_info.update(data)
    _check(data)


if __name__ == "__main__":
    unknown = set(BACKENDS) - set(available_backends())
    if unknown:
        raise SystemExit(
            f"BENCH_SWEEP_BACKENDS includes unavailable backends {sorted(unknown)}; "
            f"available here: {available_backends()}"
        )
    out_path = os.environ.get("BENCH_SWEEP_JSON", "BENCH_sweep.json")
    result = write_baseline(out_path)
    _report(result)
    _check(result)
    best = max(
        rec["speedup_vs_serial"]
        for block in result["backends"].values()
        for rec in block["jobs"].values()
    )
    print(f"\nwrote {out_path}  (best speedup: {best:.2f}x on {result['cores']} cores)")
