"""Unit and property tests for penalty functions and superstep cost formulas.

The property tests pin the paper's contract for every ``f_m`` family:
``f_m(0) = 0``; ``f_m(m_t) = 1`` on ``[1, m]``; ``f_m(m_t) >= m_t/m`` and
increasing above ``m``.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.costs import (
    EXPONENTIAL,
    LINEAR,
    CapacityPenalty,
    ExponentialPenalty,
    LinearPenalty,
    PolynomialPenalty,
    bsp_g_cost,
    bsp_m_cost,
    qsm_g_cost,
    qsm_m_cost,
    self_scheduling_cost,
    slot_charges,
    superstep_charge,
)

PENALTIES = [LinearPenalty(), ExponentialPenalty(), PolynomialPenalty(2.0), PolynomialPenalty(3.5)]


@pytest.mark.parametrize("pen", PENALTIES, ids=lambda p: f"{p.name}")
class TestPenaltyContract:
    def test_zero_is_free(self, pen):
        assert pen.scalar(0, 10) == 0.0

    def test_in_band_is_unit(self, pen):
        for c in (1, 5, 10):
            assert pen.scalar(c, 10) == 1.0

    @given(st.integers(1, 10_000), st.integers(1, 1000))
    def test_at_least_linear_above_m(self, pen, extra, m):
        count = m + extra
        assert pen.scalar(count, m) >= count / m - 1e-12

    @given(st.integers(1, 1000))
    def test_increasing_above_m(self, pen, m):
        counts = np.array([m + 1, 2 * m + 1, 4 * m + 1, 16 * m + 1])
        charges = pen(counts, m)
        assert np.all(np.diff(charges) > 0)

    def test_vectorized_matches_scalar(self, pen):
        m = 7
        counts = np.array([0, 1, 3, 7, 8, 20, 100])
        vec = pen(counts, m)
        scal = [pen.scalar(int(c), m) for c in counts]
        assert np.allclose(vec, scal)

    def test_rejects_negative_counts(self, pen):
        with pytest.raises(ValueError):
            pen(np.array([-1]), 5)

    def test_rejects_nonpositive_m(self, pen):
        with pytest.raises(ValueError):
            pen(np.array([1]), 0)


class TestSpecificValues:
    def test_linear_value(self):
        assert LINEAR.scalar(30, 10) == pytest.approx(3.0)

    def test_exponential_value(self):
        # e^{m_t/m - 1} at m_t = 2m is e
        assert EXPONENTIAL.scalar(20, 10) == pytest.approx(np.e)

    def test_exponential_dominates_linear(self):
        counts = np.arange(11, 200)
        assert np.all(EXPONENTIAL(counts, 10) >= LINEAR(counts, 10) - 1e-12)

    def test_polynomial_degree_one_is_linear(self):
        pen = PolynomialPenalty(1.0)
        counts = np.array([15, 30, 100])
        assert np.allclose(pen(counts, 10), LINEAR(counts, 10))

    def test_polynomial_rejects_sublinear_degree(self):
        with pytest.raises(ValueError):
            PolynomialPenalty(0.5)

    def test_capacity_raises_on_overload(self):
        pen = CapacityPenalty()
        assert pen.scalar(5, 10) == 1.0
        with pytest.raises(OverflowError):
            pen.scalar(11, 10)


class TestSuperstepCharge:
    def test_empty(self):
        assert superstep_charge(np.zeros(0), 4) == 0.0

    def test_all_in_band(self):
        # five nonempty slots, each within m: c_m = 5
        assert superstep_charge(np.array([1, 4, 4, 2, 3]), 4) == 5.0

    def test_overloaded_slot_linear(self):
        assert superstep_charge(np.array([8]), 4, LINEAR) == 2.0

    def test_slot_charges_shape(self):
        out = slot_charges(np.array([0, 1, 9]), 3)
        assert out.shape == (3,)
        assert out[0] == 0 and out[1] == 1 and out[2] == pytest.approx(np.e**2)


class TestCostFormulas:
    def test_bsp_g(self):
        assert bsp_g_cost(w=5, h=3, g=4, L=10) == 12
        assert bsp_g_cost(w=50, h=3, g=4, L=10) == 50
        assert bsp_g_cost(w=1, h=1, g=2, L=10) == 10

    def test_bsp_m(self):
        assert bsp_m_cost(w=1, h=7, c_m=5, L=2) == 7
        assert bsp_m_cost(w=1, h=2, c_m=5, L=2) == 5

    def test_self_scheduling(self):
        assert self_scheduling_cost(w=1, h=2, n=100, m=10, L=3) == 10.0
        with pytest.raises(ValueError):
            self_scheduling_cost(1, 1, 1, 0, 1)

    def test_qsm_g(self):
        assert qsm_g_cost(w=1, h=2, g=3, kappa=10) == 10
        assert qsm_g_cost(w=1, h=4, g=3, kappa=10) == 12

    def test_qsm_m(self):
        assert qsm_m_cost(w=1, h=2, kappa=3, c_m=4) == 4
