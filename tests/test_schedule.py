"""Tests for the Schedule representation and validity checking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling.schedule import Schedule, expand_per_flit, flit_offsets
from repro.workloads import HRelation, uniform_random_relation


class TestFlitHelpers:
    def test_flit_offsets(self):
        assert flit_offsets(np.array([2, 1, 3])).tolist() == [0, 1, 0, 0, 1, 2]

    def test_flit_offsets_empty(self):
        assert flit_offsets(np.array([], dtype=np.int64)).size == 0

    def test_expand_per_flit(self):
        out = expand_per_flit(np.array([10, 20]), np.array([2, 3]))
        assert out.tolist() == [10, 10, 20, 20, 20]

    @given(st.lists(st.integers(1, 10), min_size=0, max_size=50))
    def test_offsets_rebuild_lengths(self, lengths):
        lengths = np.asarray(lengths, dtype=np.int64)
        offs = flit_offsets(lengths)
        assert offs.size == lengths.sum()
        # each message's offsets are 0..len-1
        pos = 0
        for ln in lengths:
            assert offs[pos : pos + ln].tolist() == list(range(ln))
            pos += ln


def simple_rel():
    return HRelation(
        p=3,
        src=np.array([0, 1, 0]),
        dest=np.array([1, 2, 2]),
        length=np.array([2, 1, 1]),
    )


class TestScheduleValidity:
    def test_wrong_flit_count(self):
        with pytest.raises(ValueError, match="flit slots"):
            Schedule(rel=simple_rel(), flit_slots=np.array([0, 1]))

    def test_negative_slot(self):
        with pytest.raises(ValueError):
            Schedule(rel=simple_rel(), flit_slots=np.array([0, 1, 0, -1]))

    def test_valid_schedule(self):
        s = Schedule(rel=simple_rel(), flit_slots=np.array([0, 1, 0, 2]))
        s.check_valid()
        assert s.span == 3
        assert s.slot_counts().tolist() == [2, 1, 1]

    def test_per_proc_conflict_detected(self):
        # proc 0's flits at slots (0, 0) collide
        s = Schedule(rel=simple_rel(), flit_slots=np.array([0, 0, 0, 2]))
        with pytest.raises(ValueError, match="two flits"):
            s.check_valid()
        assert not s.is_valid()

    def test_consecutive_check(self):
        # message 0 (len 2, proc 0) at slots 0,2: not consecutive
        s = Schedule(rel=simple_rel(), flit_slots=np.array([0, 2, 0, 1]))
        s.check_valid()  # fine without the constraint
        with pytest.raises(ValueError, match="consecutive"):
            s.check_valid(require_consecutive=True)

    def test_empty_schedule(self):
        rel = HRelation(
            p=2,
            src=np.zeros(0, dtype=np.int64),
            dest=np.zeros(0, dtype=np.int64),
            length=np.zeros(0, dtype=np.int64),
        )
        s = Schedule(rel=rel, flit_slots=np.zeros(0, dtype=np.int64))
        s.check_valid(require_consecutive=True)
        assert s.span == 0

    def test_flit_src_and_message(self):
        s = Schedule(rel=simple_rel(), flit_slots=np.array([0, 1, 0, 2]))
        assert s.flit_src.tolist() == [0, 0, 1, 0]
        assert s.flit_message.tolist() == [0, 0, 1, 2]


class TestFromMessageStarts:
    def test_consecutive_layout(self):
        rel = simple_rel()
        s = Schedule.from_message_starts(rel, np.array([5, 0, 9]))
        assert s.flit_slots.tolist() == [5, 6, 0, 9]
        s.check_valid(require_consecutive=True)

    def test_wrap_mask(self):
        rel = HRelation(
            p=1, src=np.array([0]), dest=np.array([0]), length=np.array([4])
        )
        s = Schedule.from_message_starts(
            rel, np.array([3]), window=5, wrap_mask=np.array([True])
        )
        assert s.flit_slots.tolist() == [3, 4, 0, 1]

    def test_wrap_without_window_rejected(self):
        rel = simple_rel()
        with pytest.raises(ValueError, match="window"):
            Schedule.from_message_starts(rel, np.array([0, 0, 0]), wrap_mask=np.array([True, False, False]))

    def test_wrong_starts_count(self):
        with pytest.raises(ValueError):
            Schedule.from_message_starts(simple_rel(), np.array([0]))


@settings(max_examples=30, deadline=None)
@given(
    p=st.integers(2, 16),
    n=st.integers(1, 100),
    seed=st.integers(0, 10_000),
)
def test_slot_counts_conserve_flits(p, n, seed):
    rel = uniform_random_relation(p, n, seed=seed)
    rng = np.random.default_rng(seed)
    slots = rng.integers(0, 1000, size=rel.n)
    s = Schedule(rel=rel, flit_slots=slots)
    assert int(s.slot_counts().sum()) == rel.n


class TestLoadProfile:
    def test_load_profile_renders(self):
        s = Schedule(rel=simple_rel(), flit_slots=np.array([0, 1, 0, 2]))
        prof = s.load_profile(m=1)
        assert "avg" in prof and "!" in prof  # slot 0 holds 2 > m=1 flits

    def test_load_profile_all_zero_histogram(self, monkeypatch):
        # slot_counts() of a real schedule always has a nonzero max, but a
        # subclass / padded layout can legally report an all-zero histogram;
        # load_profile must not divide by peak == 0 (regression).
        s = Schedule(rel=simple_rel(), flit_slots=np.array([0, 1, 0, 2]))
        monkeypatch.setattr(
            s, "slot_counts", lambda: np.zeros(8, dtype=np.int64)
        )
        prof = s.load_profile()
        assert "avg" in prof  # renders minimum-width bars, no ZeroDivisionError
