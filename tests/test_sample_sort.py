"""Tests for randomized sample sort."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BSPg, BSPm, MachineParams, QSMm
from repro.algorithms import sample_sort


def make_bspm(p=64, m=8):
    return BSPm(MachineParams(p=p, m=m, L=2))


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 10, 100, 1000, 4096])
    def test_sorts_random_keys(self, n):
        rng = np.random.default_rng(n)
        keys = rng.random(n)
        res, out = sample_sort(make_bspm(), keys, seed=1)
        assert np.array_equal(out, np.sort(keys))

    def test_duplicates(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 5, 2000).astype(float)
        _, out = sample_sort(make_bspm(), keys, seed=2)
        assert np.array_equal(out, np.sort(keys))

    def test_already_sorted(self):
        keys = np.arange(1000, dtype=float)
        _, out = sample_sort(make_bspm(), keys, seed=3)
        assert np.array_equal(out, keys)

    def test_reverse_sorted(self):
        keys = np.arange(1000, dtype=float)[::-1]
        _, out = sample_sort(make_bspm(), keys, seed=4)
        assert np.array_equal(out, np.sort(keys))

    def test_all_equal(self):
        keys = np.full(500, 3.14)
        _, out = sample_sort(make_bspm(), keys, seed=5)
        assert np.array_equal(out, keys)

    def test_empty(self):
        _, out = sample_sort(make_bspm(), np.zeros(0), seed=6)
        assert out.size == 0

    def test_on_bspg(self):
        rng = np.random.default_rng(1)
        keys = rng.normal(size=800)
        _, out = sample_sort(BSPg(MachineParams(p=32, g=4.0, L=2)), keys, seed=7)
        assert np.array_equal(out, np.sort(keys))

    def test_custom_sorters_and_oversample(self):
        rng = np.random.default_rng(2)
        keys = rng.random(600)
        _, out = sample_sort(make_bspm(), keys, sorters=4, oversample=20, seed=8)
        assert np.array_equal(out, np.sort(keys))

    def test_rejects_infinite(self):
        with pytest.raises(ValueError):
            sample_sort(make_bspm(), np.array([1.0, np.inf]))

    def test_rejects_qsm(self):
        with pytest.raises(ValueError):
            sample_sort(QSMm(MachineParams(p=8, m=2)), np.ones(8))


class TestQuality:
    def test_no_overload_on_bspm(self):
        rng = np.random.default_rng(3)
        keys = rng.random(4000)
        res, _ = sample_sort(make_bspm(), keys, seed=9)
        assert res.stat_max("overloaded_slots") == 0

    def test_buckets_balanced_whp(self):
        """With Θ(lg n) oversampling the receive side stays O(n/k)."""
        rng = np.random.default_rng(4)
        keys = rng.random(8000)
        res, _ = sample_sort(make_bspm(p=64, m=8), keys, seed=10)
        # bucket routing superstep: max received (h stat of phase 3)
        h_max = max(r.stats.get("h", 0) for r in res.records)
        assert h_max <= 6 * 8000 / 8  # within a small factor of n/k

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(5)
        keys = rng.random(500)
        t1 = sample_sort(make_bspm(), keys, seed=11)[0].time
        t2 = sample_sort(make_bspm(), keys, seed=11)[0].time
        assert t1 == t2


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 600))
def test_property_sample_sort(seed, n):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 100, size=n).astype(float)
    _, out = sample_sort(make_bspm(p=32, m=4), keys, seed=seed)
    assert np.array_equal(out, np.sort(keys))
