"""Tests for bounded-buffer batched routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import route_in_batches, split_by_receive_buffer
from repro.workloads import (
    HRelation,
    all_to_one_relation,
    uniform_random_relation,
    variable_length_relation,
)


class TestSplit:
    def test_buffer_respected(self):
        rel = all_to_one_relation(100)
        for batch in split_by_receive_buffer(rel, 16):
            assert batch.y_bar <= 16

    def test_messages_conserved(self):
        rel = uniform_random_relation(32, 500, seed=0)
        batches = split_by_receive_buffer(rel, 8)
        assert sum(b.n for b in batches) == rel.n
        assert sum(b.n_messages for b in batches) == rel.n_messages

    def test_batch_count(self):
        rel = all_to_one_relation(64)
        assert len(split_by_receive_buffer(rel, 16)) == -(-63 // 16)

    def test_oversized_message_gets_own_slot(self):
        rel = HRelation(
            p=2, src=np.array([0]), dest=np.array([1]), length=np.array([100])
        )
        batches = split_by_receive_buffer(rel, 8)
        assert len(batches) == 1 and batches[0].n == 100

    def test_empty(self):
        rel = uniform_random_relation(4, 0, seed=1)
        assert split_by_receive_buffer(rel, 4) == []

    def test_bad_buffer(self):
        rel = uniform_random_relation(4, 4, seed=2)
        with pytest.raises(ValueError):
            split_by_receive_buffer(rel, 0)

    @settings(max_examples=20, deadline=None)
    @given(
        p=st.integers(2, 16),
        nm=st.integers(0, 200),
        buffer=st.integers(1, 20),
        seed=st.integers(0, 1000),
    )
    def test_property_split(self, p, nm, buffer, seed):
        rel = variable_length_relation(p, nm, mean_length=3, max_length=buffer, seed=seed)
        batches = split_by_receive_buffer(rel, buffer)
        assert sum(b.n for b in batches) == rel.n
        for b in batches:
            assert b.y_bar <= buffer


class TestRouteInBatches:
    def test_total_time_near_lower_bound(self):
        rel = uniform_random_relation(256, 20_000, seed=3)
        m, L = 64, 2.0
        out = route_in_batches(rel, m=m, buffer=200, epsilon=0.2, L=L, seed=4)
        lower = max(rel.n / m, rel.x_bar, rel.y_bar)
        assert out.total_time >= lower
        assert out.total_time <= 1.5 * lower + out.n_batches * L + 50

    def test_buffer_bound_holds_end_to_end(self):
        rel = all_to_one_relation(128)
        out = route_in_batches(rel, m=16, buffer=16, L=1, seed=5)
        assert out.max_receive_per_batch <= 16
        assert out.n_batches == -(-127 // 16)

    def test_smaller_buffer_more_batches_more_latency(self):
        rel = all_to_one_relation(128)
        big = route_in_batches(rel, m=16, buffer=64, L=8, seed=6)
        small = route_in_batches(rel, m=16, buffer=8, L=8, seed=6)
        assert small.n_batches > big.n_batches
        assert small.total_time > big.total_time

    def test_empty_relation(self):
        rel = uniform_random_relation(4, 0, seed=7)
        out = route_in_batches(rel, m=2, buffer=4)
        assert out.total_time == 0.0 and out.n_batches == 0

    def test_no_overload(self):
        rel = uniform_random_relation(512, 40_000, seed=8)
        out = route_in_batches(rel, m=128, buffer=100, epsilon=0.3, seed=9)
        assert all(not r.overloaded for r in out.batches)
