"""Tests for the CLI harness (python -m repro ...)."""

import pytest

from repro.harness import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.p == 4096 and args.m == 256

    def test_schedule_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--workload", "bogus"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--p", "256", "--m", "16", "--L", "4"]) == 0
        out = capsys.readouterr().out
        assert "One-to-all" in out and "Sorting" in out

    def test_measure(self, capsys):
        assert main(["measure", "--p", "64", "--m", "8", "--L", "4"]) == 0
        out = capsys.readouterr().out
        assert "QSM(m)" in out and "summation" in out

    @pytest.mark.parametrize("workload", ["balanced", "uniform", "zipf", "one-to-all"])
    def test_schedule(self, capsys, workload):
        assert (
            main(
                ["schedule", "--workload", workload, "--p", "128", "--n", "5000",
                 "--m", "16", "--seed", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "unbalanced-send" in out
        assert "Proposition 6.1" in out

    def test_dynamic(self, capsys):
        assert (
            main(
                ["dynamic", "--p", "64", "--m", "8", "--window", "64",
                 "--horizon", "4000", "--seed", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "UNSTABLE" in out  # beta*g = 3 sinks the BSP(g)
        assert out.count("stable") >= 3


class TestCacheCommand:
    def test_path(self, capsys, tmp_path):
        d = str(tmp_path / "store")
        assert main(["cache", "path", "--dir", d]) == 0
        assert capsys.readouterr().out.strip() == d

    def test_stats_and_clear_round_trip(self, capsys, tmp_path):
        import json

        from repro.store.disk import DiskStore

        d = str(tmp_path / "store")
        DiskStore(d, tag="t").put(("k",), 1)
        assert main(["cache", "stats", "--dir", d, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["disk"]["entries"] == 1
        assert main(["cache", "clear", "--dir", d]) == 0
        assert "removed 1 entry" in capsys.readouterr().out
        assert main(["cache", "stats", "--dir", d, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["disk"]["entries"] == 0

    def test_stats_table_marks_stale_tag(self, capsys, tmp_path):
        from repro.store.disk import DiskStore

        d = str(tmp_path / "store")
        DiskStore(d, tag="v0+dead").put(("k",), 1)
        assert main(["cache", "stats", "--dir", d]) == 0
        assert "STALE" in capsys.readouterr().out


class TestOnErrorFlag:
    def test_invalid_policy_is_usage_error(self, capsys):
        assert main(["experiment", "leader_gap", "--on-error", "bogus"]) == 2
        assert "on-error" in capsys.readouterr().err

    def test_non_sweep_experiment_rejects_flag(self, capsys):
        assert (
            main(["experiment", "table1_measured", "--on-error", "skip"]) == 2
        )
        assert "does not run a sweep" in capsys.readouterr().err


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.budget_m == 4096 and args.max_queue == 64
        assert args.port == 8377 and args.workers == 4

    def test_rejects_bad_budget(self, capsys):
        assert main(["serve", "--budget-m", "0", "--no-store"]) == 2
        assert "budget_m" in capsys.readouterr().err
