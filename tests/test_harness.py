"""Tests for the CLI harness (python -m repro ...)."""

import pytest

from repro.harness import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.p == 4096 and args.m == 256

    def test_schedule_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--workload", "bogus"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--p", "256", "--m", "16", "--L", "4"]) == 0
        out = capsys.readouterr().out
        assert "One-to-all" in out and "Sorting" in out

    def test_measure(self, capsys):
        assert main(["measure", "--p", "64", "--m", "8", "--L", "4"]) == 0
        out = capsys.readouterr().out
        assert "QSM(m)" in out and "summation" in out

    @pytest.mark.parametrize("workload", ["balanced", "uniform", "zipf", "one-to-all"])
    def test_schedule(self, capsys, workload):
        assert (
            main(
                ["schedule", "--workload", workload, "--p", "128", "--n", "5000",
                 "--m", "16", "--seed", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "unbalanced-send" in out
        assert "Proposition 6.1" in out

    def test_dynamic(self, capsys):
        assert (
            main(
                ["dynamic", "--p", "64", "--m", "8", "--window", "64",
                 "--horizon", "4000", "--seed", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "UNSTABLE" in out  # beta*g = 3 sinks the BSP(g)
        assert out.count("stable") >= 3
