"""Tests for Unbalanced-Send and Unbalanced-Consecutive-Send (Theorems
6.2/6.3): validity, span bounds, window math, and measured overload behavior."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    evaluate_schedule,
    send_window,
    unbalanced_consecutive_send,
    unbalanced_send,
)
from repro.scheduling.static_send import per_proc_flit_ranks
from repro.workloads import (
    one_to_all_relation,
    uniform_random_relation,
    variable_length_relation,
    zipf_h_relation,
)


class TestWindow:
    def test_formula(self):
        assert send_window(1000, 10, 0.1) == 110

    def test_minimum_one(self):
        assert send_window(0, 10, 0.1) == 1

    def test_bad_epsilon(self):
        with pytest.raises(ValueError):
            send_window(10, 5, 0.0)

    def test_bad_m(self):
        with pytest.raises(ValueError):
            send_window(10, 0, 0.1)


class TestRanks:
    def test_basic(self):
        src = np.array([1, 0, 1, 1, 0])
        assert per_proc_flit_ranks(src, 2).tolist() == [0, 0, 1, 2, 1]

    def test_empty(self):
        assert per_proc_flit_ranks(np.zeros(0, dtype=np.int64), 4).size == 0

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=200))
    def test_ranks_are_per_proc_permutations(self, srcs):
        src = np.asarray(srcs, dtype=np.int64)
        ranks = per_proc_flit_ranks(src, 8)
        for pid in range(8):
            mine = ranks[src == pid]
            assert sorted(mine.tolist()) == list(range(mine.size))


class TestUnbalancedSend:
    def test_valid_and_window_span(self):
        rel = uniform_random_relation(128, 5000, seed=0)
        sched = unbalanced_send(rel, m=32, epsilon=0.2, seed=1)
        sched.check_valid()
        window = send_window(rel.n, 32, 0.2)
        assert sched.window == window
        assert sched.span <= max(window, rel.x_bar)

    def test_oversized_processor_sends_from_zero(self):
        rel = one_to_all_relation(64)  # x̄ = 63 >> window when m large
        sched = unbalanced_send(rel, m=63, epsilon=0.1, seed=2)
        sched.check_valid()
        assert sched.meta["oversized_procs"] == 1.0
        # the big sender occupies slots 0..62
        assert sched.span == 63

    def test_deterministic_under_seed(self):
        rel = uniform_random_relation(64, 2000, seed=3)
        a = unbalanced_send(rel, m=16, epsilon=0.1, seed=42)
        b = unbalanced_send(rel, m=16, epsilon=0.1, seed=42)
        assert np.array_equal(a.flit_slots, b.flit_slots)

    def test_no_overload_whp(self):
        """With m = 256 and eps = 0.5 the failure probability is tiny; all
        20 seeds must stay within the bandwidth."""
        rel = uniform_random_relation(1024, 100_000, seed=4)
        for seed in range(20):
            sched = unbalanced_send(rel, m=256, epsilon=0.5, seed=seed)
            rep = evaluate_schedule(sched, m=256)
            assert not rep.overloaded, f"seed {seed} overloaded"
            assert rep.ratio <= 1.55

    def test_known_n_override(self):
        rel = uniform_random_relation(32, 100, seed=5)
        sched = unbalanced_send(rel, m=8, epsilon=0.1, seed=6, n=1000)
        assert sched.window == send_window(1000, 8, 0.1)

    def test_spread_template(self):
        rel = uniform_random_relation(64, 3000, seed=7)
        sched = unbalanced_send(rel, m=16, epsilon=0.2, seed=8, template="spread")
        sched.check_valid()

    def test_bad_template(self):
        rel = uniform_random_relation(8, 10, seed=9)
        with pytest.raises(ValueError, match="template"):
            unbalanced_send(rel, m=4, epsilon=0.1, template="bogus")

    def test_skewed_ratio_near_one(self):
        """Under heavy skew the optimum is x̄-dominated and the schedule
        must track it exactly."""
        rel = zipf_h_relation(512, 50_000, alpha=1.4, seed=10)
        sched = unbalanced_send(rel, m=64, epsilon=0.1, seed=11)
        rep = evaluate_schedule(sched, m=64)
        assert rep.ratio <= 1.15


class TestConsecutiveSend:
    def test_messages_consecutive(self):
        rel = variable_length_relation(64, 500, mean_length=6, seed=12)
        sched = unbalanced_consecutive_send(rel, m=16, epsilon=0.2, seed=13)
        sched.check_valid(require_consecutive=True)

    def test_span_bound(self):
        rel = uniform_random_relation(128, 10_000, seed=14)
        sched = unbalanced_consecutive_send(rel, m=32, epsilon=0.2, seed=15)
        window = send_window(rel.n, 32, 0.2)
        x_bar_prime = sched.meta["x_bar_prime"]
        assert sched.span <= window + x_bar_prime

    def test_oversized_starts_at_zero(self):
        rel = one_to_all_relation(32)
        sched = unbalanced_consecutive_send(rel, m=31, epsilon=0.1, seed=16)
        sched.check_valid(require_consecutive=True)
        assert sched.span == 31

    def test_no_overload_whp(self):
        rel = uniform_random_relation(512, 50_000, seed=17)
        for seed in range(10):
            sched = unbalanced_consecutive_send(rel, m=256, epsilon=0.5, seed=seed)
            rep = evaluate_schedule(sched, m=256)
            assert not rep.overloaded


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(2, 64),
    n=st.integers(1, 2000),
    m=st.integers(1, 64),
    seed=st.integers(0, 10_000),
)
def test_unbalanced_send_always_valid(p, n, m, seed):
    """Whatever the workload, the schedule never violates per-processor
    slot-uniqueness, schedules every flit exactly once, and stays within
    max(window, x̄) slots."""
    rel = uniform_random_relation(p, n, seed=seed)
    sched = unbalanced_send(rel, m=m, epsilon=0.25, seed=seed)
    sched.check_valid()
    assert sched.flit_slots.size == rel.n
    assert sched.span <= max(sched.window, rel.x_bar)


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(2, 32),
    nm=st.integers(1, 300),
    m=st.integers(1, 32),
    seed=st.integers(0, 10_000),
)
def test_consecutive_send_always_valid(p, nm, m, seed):
    rel = variable_length_relation(p, nm, mean_length=4, seed=seed)
    sched = unbalanced_consecutive_send(rel, m=m, epsilon=0.25, seed=seed)
    sched.check_valid(require_consecutive=True)
