"""Batched multi-trial execution: the bit-identity contract.

Gates — the same way fused≡legacy execution was gated when the fused path
landed:

* ``replay_batch(compiled, machines)[b]`` ≡ ``compiled.replay(machines[b])``
  for all five paper models (costs, breakdowns, stats dicts incl. key
  order, shared-memory state), plus its validation/fallback edges;
* ``execute_schedule_batch`` / ``compile_schedule`` ≡ ``execute_schedule``;
* the batched kernels (``penalty_charges_batched`` /
  ``slot_charge_stats_batched``) row-for-row against their 1-D twins;
* ``stable_group_order`` against ``np.argsort(kind="stable")`` including
  the int64-overflow fallback boundary, and the arena freeze paths that
  now route through it;
* sweep-runner fingerprint grouping (serial and pool, error fallback,
  observability opt-out) and the ``pricing_ablation`` experiment;
* serve-layer ``run_scenario_batch`` and executor request coalescing,
  cold and warm cache.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import (
    BSPg,
    BSPm,
    MachineParams,
    PenaltyFunction,
    PolynomialPenalty,
    QSMg,
    QSMm,
    SelfSchedulingBSPm,
    EXPONENTIAL,
    LINEAR,
)
from repro.core.arena import RequestArena, SendArena
from repro.core.batched import replay_batch, supports_batched_replay
from repro.core.compiled import CompiledProgram, compile_program
from repro.core.kernels import (
    _COMBINED_SORT_LIMIT,
    KIND_EXPONENTIAL,
    KIND_LINEAR,
    KIND_POLYNOMIAL,
    penalty_charges,
    penalty_charges_batched,
    slot_charge_stats,
    slot_charge_stats_batched,
    stable_group_order,
)
from repro.scheduling import unbalanced_send
from repro.scheduling.execute import (
    compile_schedule,
    execute_schedule,
    execute_schedule_batch,
)
from repro.sweep import SweepSpec, run_sweep
from repro.workloads import uniform_random_relation


class _SqrtPenalty(PenaltyFunction):
    """Custom subclass with no kernel family: exercises the per-instance
    fallback row of ``slot_charge_stats_batched``."""

    name = "sqrt-test"

    def overload(self, rho: np.ndarray) -> np.ndarray:
        return rho * np.sqrt(rho)


def _assert_runs_identical(seq, bat):
    """``bat`` must reproduce ``seq`` bit-for-bit (the replay contract)."""
    assert bat.time == seq.time
    assert len(bat.records) == len(seq.records)
    assert bat.results == seq.results
    for ra, rb in zip(seq.records, bat.records):
        assert rb.cost == ra.cost
        assert rb.breakdown == ra.breakdown
        assert list(rb.stats.keys()) == list(ra.stats.keys())
        assert rb.stats == ra.stats
        assert rb.work == ra.work


# ----------------------------------------------------------------------
# kernels: batched rows vs their 1-D twins
# ----------------------------------------------------------------------
class TestBatchedKernels:
    COUNTS = np.array([0, 1, 3, 7, 2, 9, 4, 0, 5], dtype=np.int64)

    @pytest.mark.parametrize(
        "kind,param",
        [(KIND_LINEAR, 0.0), (KIND_EXPONENTIAL, 0.0), (KIND_POLYNOMIAL, 2.5)],
    )
    def test_penalty_charges_batched_rows(self, kind, param):
        m_col = [2, 4, 2, 8, 3]
        out = penalty_charges_batched(self.COUNTS, m_col, kind, param)
        assert out.shape == (len(m_col), self.COUNTS.size)
        for b, m in enumerate(m_col):
            expect = penalty_charges(self.COUNTS, m, kind, param)
            assert np.array_equal(out[b], expect)

    def test_slot_charge_stats_batched_mixed_penalties(self):
        pens = [LINEAR, EXPONENTIAL, PolynomialPenalty(3.0), _SqrtPenalty(), LINEAR]
        m_col = [2, 4, 3, 2, 2]
        comm, c_m_paper, span, overloaded, max_load = slot_charge_stats_batched(
            self.COUNTS, m_col, pens
        )
        for b, (m, pen) in enumerate(zip(m_col, pens)):
            e_comm, e_paper, e_span, e_over, e_max = slot_charge_stats(
                self.COUNTS, m, pen
            )
            assert comm[b] == e_comm
            assert c_m_paper[b] == e_paper
            assert span == e_span
            assert int(overloaded[b]) == e_over
            assert max_load == e_max

    def test_slot_charge_stats_batched_empty(self):
        comm, c_m_paper, span, overloaded, max_load = slot_charge_stats_batched(
            np.array([], dtype=np.int64), [2, 4], [LINEAR, EXPONENTIAL]
        )
        assert np.array_equal(comm, [0.0, 0.0])
        assert np.array_equal(c_m_paper, [0.0, 0.0])
        assert span == 0.0 and max_load == 0
        assert np.array_equal(overloaded, [0, 0])


# ----------------------------------------------------------------------
# stable_group_order: the argsort twin and its overflow fallback
# ----------------------------------------------------------------------
class TestStableGroupOrder:
    def test_matches_stable_argsort(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 17, size=500).astype(np.int64)
        order = stable_group_order(keys, 16)
        assert np.array_equal(order, np.argsort(keys, kind="stable"))

    def test_trivial_sizes(self):
        assert stable_group_order(np.array([], dtype=np.int64), 0).size == 0
        assert np.array_equal(
            stable_group_order(np.array([5], dtype=np.int64), 5), [0]
        )

    def test_overflow_fallback_matches(self):
        # a max_key big enough that key*n + i could overflow int64 forces
        # the argsort fallback; the permutation must not change
        keys = np.array([3, 1, 3, 0, 1, 2, 3, 0], dtype=np.int64)
        fast = stable_group_order(keys, 3)
        fallback = stable_group_order(keys, 2**62)
        assert np.array_equal(fallback, fast)
        assert np.array_equal(fallback, np.argsort(keys, kind="stable"))

    def test_fallback_boundary_arithmetic(self):
        # (max_key + 1) * n straddling the int64 limit: one below takes the
        # combined sort, at-or-above takes the fallback — same permutation
        keys = np.array([2, 0, 1, 0], dtype=np.int64)
        n = keys.size
        mk_fallback = -(-_COMBINED_SORT_LIMIT // n) - 1  # smallest mk that trips
        mk_fast = mk_fallback - 1
        assert (mk_fast + 1) * n < _COMBINED_SORT_LIMIT
        assert (mk_fallback + 1) * n >= _COMBINED_SORT_LIMIT
        expect = np.argsort(keys, kind="stable")
        assert np.array_equal(stable_group_order(keys, mk_fast), expect)
        assert np.array_equal(stable_group_order(keys, mk_fallback), expect)


# ----------------------------------------------------------------------
# arenas: the two freeze paths that now use stable_group_order
# ----------------------------------------------------------------------
def _send_batch(arena, pid, k, base):
    arena.append_batch(
        pid,
        dest=np.arange(k, dtype=np.int64) + base,
        size=None,
        slot=np.arange(k, dtype=np.int64),
        consecutive=False,
        payloads=np.arange(k, dtype=np.int64) * 10 + pid,
    )


class TestArenaReorder:
    def test_send_arena_out_of_order_freeze(self):
        # appends in pid order vs out of order must freeze identically:
        # the repaired batch is the legacy pid-major gather order
        ordered, shuffled = SendArena(4), SendArena(4)
        for pid in (0, 1, 2):
            _send_batch(ordered, pid, 3, base=pid * 100)
        for pid in (2, 0, 1):
            _send_batch(shuffled, pid, 3, base=pid * 100)
        a, b = ordered.freeze(), shuffled.freeze()
        for col in ("src", "dest", "size", "slot", "consecutive"):
            assert np.array_equal(getattr(b, col), getattr(a, col)), col
        assert np.array_equal(b.payload, a.payload)

    def test_request_arena_reorder_spans(self):
        ordered, shuffled = RequestArena(4), RequestArena(4)
        handles = {}
        for arena, pids in ((ordered, (0, 1)), (shuffled, (1, 0))):
            for pid in pids:
                h = f"h{pid}"
                handles.setdefault(pid, h)
                arena.append_batch_read(
                    pid,
                    addr=np.arange(2, dtype=np.int64) + pid * 10,
                    slot=np.arange(2, dtype=np.int64),
                    handle=h,
                )
        a = ordered.freeze(with_values=False)
        b = shuffled.freeze(with_values=False)
        assert np.array_equal(b.pid, a.pid)
        assert np.array_equal(b.addr, a.addr)
        assert np.array_equal(b.slot, a.slot)
        # handle spans must point at each pid's rows after the reorder
        spans_a = {h: (s, e) for h, s, e in a.handles}
        spans_b = {h: (s, e) for h, s, e in b.handles}
        assert spans_b == spans_a


# ----------------------------------------------------------------------
# replay_batch: message-passing models
# ----------------------------------------------------------------------
P, N, SCHED_M = 64, 4_000, 16


@pytest.fixture(scope="module")
def routing_compiled():
    rel = uniform_random_relation(P, N, seed=0)
    sched = unbalanced_send(rel, SCHED_M, 0.2, seed=1)
    return sched, compile_schedule(sched)


class TestReplayBatchMessagePassing:
    def test_bsp_m_grid_identity(self, routing_compiled):
        _, compiled = routing_compiled
        pens = [EXPONENTIAL, LINEAR, PolynomialPenalty(2.0), _SqrtPenalty()]
        machines = [
            BSPm(MachineParams(p=P, m=m, L=L), penalty=pens[i % len(pens)])
            for i, (m, L) in enumerate(
                (m, L) for m in (8, 16, 32, 64) for L in (1.0, 4.0, 16.0)
            )
        ]
        assert supports_batched_replay(machines[0])
        batched = replay_batch(compiled, machines)
        for mach, bat in zip(machines, batched):
            _assert_runs_identical(compiled.replay(mach), bat)

    def test_bsp_g_identity(self, routing_compiled):
        _, compiled = routing_compiled
        machines = [
            BSPg(MachineParams(p=P, g=g, L=L))
            for g in (1.0, 1.5, 2.0, 4.0)
            for L in (1.0, 8.0)
        ]
        batched = replay_batch(compiled, machines)
        for mach, bat in zip(machines, batched):
            _assert_runs_identical(compiled.replay(mach), bat)

    def test_self_scheduling_identity(self, routing_compiled):
        _, compiled = routing_compiled
        machines = [
            SelfSchedulingBSPm(MachineParams(p=P, m=m, L=L))
            for m in (8, 32, 128)
            for L in (1.0, 16.0)
        ]
        batched = replay_batch(compiled, machines)
        for mach, bat in zip(machines, batched):
            _assert_runs_identical(compiled.replay(mach), bat)

    def test_empty_and_singleton_batches(self, routing_compiled):
        _, compiled = routing_compiled
        assert replay_batch(compiled, []) == []
        mach = BSPm(MachineParams(p=P, m=16, L=1))
        (only,) = replay_batch(compiled, [mach])
        _assert_runs_identical(
            compiled.replay(BSPm(MachineParams(p=P, m=16, L=1))), only
        )

    def test_quiet_superstep_identity(self):
        # a frame with no communication exercises the empty-histogram path
        def quiet(ctx):
            yield

        compiled = compile_program(BSPm(MachineParams(p=4, m=2, L=3)), quiet)
        machines = [BSPm(MachineParams(p=4, m=m, L=L)) for m in (2, 4) for L in (1, 5)]
        for mach, bat in zip(machines, replay_batch(compiled, machines)):
            _assert_runs_identical(compiled.replay(mach), bat)

    def test_mixed_model_classes_rejected(self, routing_compiled):
        _, compiled = routing_compiled
        with pytest.raises(ValueError, match="one model class"):
            replay_batch(
                compiled,
                [
                    BSPm(MachineParams(p=P, m=16, L=1)),
                    BSPg(MachineParams(p=P, g=1.0, L=1)),
                ],
            )

    def test_memory_kind_mismatch_rejected(self, routing_compiled):
        _, compiled = routing_compiled
        machines = [QSMm(MachineParams(p=P, m=16)) for _ in range(2)]
        with pytest.raises(ValueError, match="message-passing"):
            replay_batch(compiled, machines)

    def test_too_few_processors_rejected(self, routing_compiled):
        _, compiled = routing_compiled
        machines = [BSPm(MachineParams(p=P // 2, m=16, L=1)) for _ in range(2)]
        with pytest.raises(ValueError, match="processors"):
            replay_batch(compiled, machines)

    def test_fault_injector_rejected(self, routing_compiled):
        from repro.faults import FaultPlan

        _, compiled = routing_compiled
        bad = BSPm(MachineParams(p=P, m=16, L=1))
        bad.inject_faults(FaultPlan(seed=0, drop_rate=0.1))
        with pytest.raises(ValueError, match="fault injector"):
            replay_batch(compiled, [BSPm(MachineParams(p=P, m=16, L=1)), bad])

    def test_tracer_falls_back_to_sequential(self, routing_compiled):
        from repro.obs.tracer import install_tracer, uninstall_tracer

        _, compiled = routing_compiled
        machines = [BSPm(MachineParams(p=P, m=m, L=1)) for m in (8, 16)]
        install_tracer()
        try:
            batched = replay_batch(compiled, machines)
        finally:
            uninstall_tracer()
        for mach, bat in zip(machines, batched):
            _assert_runs_identical(
                compiled.replay(BSPm(MachineParams(p=P, m=mach.params.m, L=1))), bat
            )


# ----------------------------------------------------------------------
# replay_batch: shared-memory (QSM) models
# ----------------------------------------------------------------------
def _qsm_program(ctx, rounds, k, span):
    addrs = (ctx.pid * k + np.arange(k, dtype=np.int64)) % span
    values = np.arange(k, dtype=np.int64) + ctx.pid
    for r in range(rounds):
        ctx.write_many(addrs, values)
        yield
        ctx.read_many((addrs + (r + 1) * k) % span)
        yield


def _qsm_machine(cls, span, **kw):
    mach = cls(MachineParams(**kw))
    mach.use_dense_memory(span)
    return mach


class TestReplayBatchSharedMemory:
    P, ROUNDS, K = 16, 3, 5

    @pytest.fixture(scope="class")
    def qsm_compiled(self):
        span = self.P * self.K
        recorder = _qsm_machine(QSMm, span, p=self.P, m=4)
        return span, compile_program(
            recorder, _qsm_program, args=(self.ROUNDS, self.K, span)
        )

    def test_qsm_m_grid_identity(self, qsm_compiled):
        span, compiled = qsm_compiled
        pens = [EXPONENTIAL, LINEAR, _SqrtPenalty()]
        machines = [
            QSMm(MachineParams(p=self.P, m=m), penalty=pens[i % len(pens)])
            for i, m in enumerate((2, 4, 8, 16, 4, 2))
        ]
        for mach in machines:
            mach.use_dense_memory(span)
        batched = replay_batch(compiled, machines)
        for mach, bat in zip(machines, batched):
            twin = QSMm(MachineParams(p=self.P, m=mach.params.m), penalty=mach.penalty)
            twin.use_dense_memory(span)
            seq = compiled.replay(twin)
            _assert_runs_identical(seq, bat)
            # writes were applied to each batch machine exactly as sequential
            assert list(mach.shared_memory._cells) == list(twin.shared_memory._cells)
            assert mach.shared_memory._overflow == twin.shared_memory._overflow

    def test_qsm_g_grid_identity(self, qsm_compiled):
        span, compiled = qsm_compiled
        machines = [
            _qsm_machine(QSMg, span, p=self.P, g=g) for g in (1.0, 1.5, 2.0, 3.0)
        ]
        batched = replay_batch(compiled, machines)
        for mach, bat in zip(machines, batched):
            twin = _qsm_machine(QSMg, span, p=self.P, g=mach.params.g)
            _assert_runs_identical(compiled.replay(twin), bat)


# ----------------------------------------------------------------------
# schedule layer: compile_schedule / execute_schedule_batch
# ----------------------------------------------------------------------
class TestScheduleBatch:
    def test_compile_schedule_replay_matches_execute(self, routing_compiled):
        sched, compiled = routing_compiled
        machine = BSPm(MachineParams(p=P, m=SCHED_M, L=2))
        direct = execute_schedule(BSPm(MachineParams(p=P, m=SCHED_M, L=2)), sched)
        replayed = compiled.replay(machine)
        assert replayed.time == direct.time
        assert len(replayed.records) == len(direct.records)
        for ra, rb in zip(direct.records, replayed.records):
            assert rb.cost == ra.cost
            assert rb.stats == ra.stats

    def test_execute_schedule_batch_identity(self, routing_compiled):
        sched, _ = routing_compiled
        grid = [(m, L) for m in (8, 16, 32) for L in (1.0, 4.0)]
        machines = [BSPm(MachineParams(p=P, m=m, L=L)) for m, L in grid]
        batched = execute_schedule_batch(machines, sched)
        for (m, L), bat in zip(grid, batched):
            direct = execute_schedule(BSPm(MachineParams(p=P, m=m, L=L)), sched)
            assert bat.time == direct.time
            for ra, rb in zip(direct.records, bat.records):
                assert rb.cost == ra.cost
                assert rb.stats == ra.stats

    def test_execute_schedule_batch_reuses_compiled(self, routing_compiled):
        sched, compiled = routing_compiled
        machines = [BSPm(MachineParams(p=P, m=m, L=1)) for m in (8, 16)]
        out = execute_schedule_batch(machines, sched, compiled=compiled)
        assert out[0].time == compiled.replay(BSPm(MachineParams(p=P, m=8, L=1))).time

    def test_shared_memory_machine_rejected(self, routing_compiled):
        sched, _ = routing_compiled
        with pytest.raises(ValueError, match="point-to-point"):
            execute_schedule_batch([QSMm(MachineParams(p=P, m=4))], sched)


# ----------------------------------------------------------------------
# sweep runner: fingerprint grouping
# ----------------------------------------------------------------------
def _cell(x, L, seed):
    return {"x": x, "L": L, "value": x * 10 + L}


def _cell_batch_run(params_list, seeds):
    return [_cell(seed=s, **p) for p, s in zip(params_list, seeds)]


def _cell_fingerprint(params):
    return params["x"]


_cell.batch_run = _cell_batch_run
_cell.batch_fingerprint = _cell_fingerprint


def _boomy(x, L, seed):
    if L == 2:
        raise RuntimeError("bad cell")
    return x * 10 + L


def _boomy_batch_run(params_list, seeds):
    if any(p["L"] == 2 for p in params_list):
        raise RuntimeError("batch poisoned")
    return [_boomy(seed=s, **p) for p, s in zip(params_list, seeds)]


def _boomy_fingerprint(params):
    return params["x"]


_boomy.batch_run = _boomy_batch_run
_boomy.batch_fingerprint = _boomy_fingerprint

_GRID = [{"x": x, "L": L} for x in (1, 2) for L in (0, 1, 3)]


class TestSweepBatching:
    def test_serial_identity_and_stats(self):
        spec = SweepSpec(name="b", fn=_cell, grid=_GRID, seed=5)
        plain = run_sweep(spec, jobs=1, batch=False)
        fused = run_sweep(spec, jobs=1, batch=True)
        assert fused.results == plain.results
        assert plain.batch_stats["enabled"] is False
        assert fused.batch_stats["enabled"] is True
        assert fused.batch_stats["groups"] == 2  # one per x value
        assert fused.batch_stats["batched_trials"] == len(_GRID)
        assert fused.batch_stats["dispatched_units"] == 2
        assert fused.batch_stats["amortization"] == len(_GRID) / 2
        assert fused.telemetry()["batch"]["enabled"] is True
        assert fused.telemetry()["schema_version"] >= 6

    def test_default_engages_automatically(self):
        spec = SweepSpec(name="b", fn=_cell, grid=_GRID, seed=5)
        res = run_sweep(spec, jobs=1)  # batch=None
        assert res.batch_stats["enabled"] is True

    def test_pool_identity(self):
        spec = SweepSpec(name="b", fn=_cell, grid=_GRID, seed=5)
        serial = run_sweep(spec, jobs=1, batch=False)
        pooled = run_sweep(spec, jobs=2, backend="pool-steal", batch=True)
        assert pooled.results == serial.results
        assert pooled.batch_stats["enabled"] is True

    def test_tracer_disables_batching(self):
        from repro.obs.tracer import install_tracer, uninstall_tracer

        spec = SweepSpec(name="b", fn=_cell, grid=_GRID, seed=5)
        install_tracer()
        try:
            res = run_sweep(spec, jobs=1, batch=True)
        finally:
            uninstall_tracer()
        assert res.batch_stats["enabled"] is False
        assert res.results == run_sweep(spec, jobs=1, batch=False).results

    def test_failed_batch_falls_back_per_member(self):
        grid = [{"x": 1, "L": L} for L in (0, 1, 2, 3)]
        spec = SweepSpec(name="b", fn=_boomy, grid=grid, seed=5)
        res = run_sweep(spec, jobs=1, batch=True, on_error="skip")
        # only the poisoned member is skipped; its group-mates survive
        assert res.results == [10, 11, None, 13]
        assert res.skipped == 1
        assert res.batch_stats["fallbacks"] == 1

    def test_failed_batch_raises_with_member_label(self):
        from repro.sweep import TrialExecutionError

        grid = [{"x": 1, "L": L} for L in (0, 2)]
        spec = SweepSpec(name="b", fn=_boomy, grid=grid, seed=5)
        with pytest.raises(TrialExecutionError):
            run_sweep(spec, jobs=1, batch=True, on_error="raise")


# ----------------------------------------------------------------------
# experiments + serve
# ----------------------------------------------------------------------
class TestPricingAblationExperiment:
    def test_batch_on_off_identical(self):
        from repro.experiments import pricing_ablation

        kw = dict(
            p=32, n=2_000, schedule_m=8,
            m_values=(4, 8, 16), L_values=(1.0, 4.0), seed=3,
        )
        off = pricing_ablation(batch=False, **kw)
        on = pricing_ablation(batch=True, **kw)
        stats = on.pop("batch")
        off.pop("batch")
        assert on == off
        assert stats["enabled"] is True
        assert stats["amortization"] == 6.0


SCENARIO = {"p": 16, "n": 1500, "m": 64, "workload": "zipf"}


class TestServeBatching:
    def test_run_scenario_batch_identity(self):
        from repro.serve.executor import run_scenario, run_scenario_batch

        params_list = [dict(SCENARIO, L=L) for L in (1.0, 2.0, 8.0)]
        batch = run_scenario_batch(params_list, seed=7)
        for pp, got in zip(params_list, batch):
            assert got == run_scenario(pp, 7)

    def test_executor_coalesces_cold_and_warm(self, tmp_path):
        from repro.serve import ExecutorConfig, ReproServer, ServeClient
        from repro.serve.executor import run_scenario
        from repro.store.disk import DiskStore

        store = DiskStore(str(tmp_path / "store"), tag="t")
        server = ReproServer(
            port=0, store=store,
            executor=ExecutorConfig(workers=1, backoff_base=0.01),
        )
        server.start()
        try:
            client = ServeClient(server.url, timeout=60)
            Ls = [1.0, 2.0, 4.0, 8.0]
            results = {}
            lock = threading.Lock()

            def go(L):
                r = client.submit("scenario", dict(SCENARIO, L=L), seed=5)
                with lock:
                    results[L] = r

            threads = [threading.Thread(target=go, args=(L,)) for L in Ls]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            blob = json.dumps  # arrays never appear in responses
            for L in Ls:
                want = run_scenario(dict(SCENARIO, L=L), 5)
                assert blob(results[L]["result"], sort_keys=True) == blob(
                    want, sort_keys=True
                )
            warm = client.submit("scenario", dict(SCENARIO, L=2.0), seed=5)
            assert warm["cached"] is True
            assert blob(warm["result"], sort_keys=True) == blob(
                run_scenario(dict(SCENARIO, L=2.0), 5), sort_keys=True
            )
        finally:
            server.drain(timeout=30)

    def test_coalesce_config_validation(self):
        from repro.serve import ExecutorConfig

        with pytest.raises(ValueError, match="max_coalesce"):
            ExecutorConfig(max_coalesce=0)

    def test_coalesce_key_compatibility(self):
        from repro.serve.executor import _coalesce_key
        from repro.serve.protocol import Request

        def req(kind="scenario", params=None, seed=5, deadline=None):
            return Request(
                seq=0, kind=kind, params=params or dict(SCENARIO, L=1.0),
                seed=seed, fingerprint="f", cost=1, deadline=deadline,
                submitted=0.0,
            )

        base = _coalesce_key(req())
        assert base is not None
        assert _coalesce_key(req(params=dict(SCENARIO, L=9.0))) == base
        assert _coalesce_key(req(seed=6)) != base
        assert _coalesce_key(req(params=dict(SCENARIO, L=1.0, m=8))) != base
        assert _coalesce_key(req(deadline=99.0)) is None
        assert _coalesce_key(req(kind="ping")) is None
