"""Tests for schedule evaluation (the BSP(m) pricing of Section 6)."""

import numpy as np
import pytest

from repro import LINEAR, MachineParams
from repro.scheduling import (
    bsp_g_routing_time,
    evaluate_schedule,
    naive_schedule,
    offline_optimal_schedule,
    unbalanced_send,
)
from repro.scheduling.schedule import Schedule
from repro.workloads import HRelation, one_to_all_relation, uniform_random_relation


def tiny_rel():
    return HRelation(
        p=2,
        src=np.array([0, 0, 1]),
        dest=np.array([1, 1, 0]),
        length=np.array([1, 1, 1]),
    )


class TestEvaluateSchedule:
    def test_basic_quantities(self):
        rel = tiny_rel()
        sched = Schedule(rel=rel, flit_slots=np.array([0, 1, 0]))
        rep = evaluate_schedule(sched, m=2, L=0.5)
        assert rep.n == 3 and rep.m == 2
        assert rep.span == 2
        assert rep.comm_time == 2.0  # both slots within bandwidth
        assert rep.superstep_cost == 2.0  # h = max(2, 2) = 2
        assert rep.optimal_time == max(3 / 2, 2)
        assert rep.ratio == 1.0
        assert not rep.overloaded

    def test_idle_slot_counts_as_time(self):
        rel = tiny_rel()
        sched = Schedule(rel=rel, flit_slots=np.array([0, 9, 0]))
        rep = evaluate_schedule(sched, m=2)
        assert rep.span == 10
        assert rep.comm_time == 10.0

    def test_overload_penalty(self):
        rel = uniform_random_relation(32, 64, seed=0)
        rep = evaluate_schedule(naive_schedule(rel), m=2)
        assert rep.overloaded
        # slot 0 carries ~25+ flits at m=2: charge blows up exponentially
        assert rep.comm_time > 1000

    def test_linear_penalty_option(self):
        rel = uniform_random_relation(16, 16, seed=0)
        rep = evaluate_schedule(naive_schedule(rel), m=2, penalty=LINEAR)
        assert rep.comm_time == pytest.approx(
            rel.n / 2, rel=0.5
        )  # linear absorbs at throughput m

    def test_params_second_positional(self):
        rel = tiny_rel()
        params = MachineParams(p=2, m=2, L=4.0)
        sched = Schedule(rel=rel, flit_slots=np.array([0, 1, 0]))
        rep = evaluate_schedule(sched, params)
        assert rep.m == 2
        assert rep.superstep_cost == 4.0  # L floor

    def test_missing_m_rejected(self):
        sched = Schedule(rel=tiny_rel(), flit_slots=np.array([0, 1, 0]))
        with pytest.raises(ValueError, match="m must be given"):
            evaluate_schedule(sched)

    def test_tau_added(self):
        sched = Schedule(rel=tiny_rel(), flit_slots=np.array([0, 1, 0]))
        rep = evaluate_schedule(sched, m=2, tau=7.0)
        assert rep.completion_time == rep.superstep_cost + 7.0

    def test_relation_mismatch_rejected(self):
        sched = Schedule(rel=tiny_rel(), flit_slots=np.array([0, 1, 0]))
        other = uniform_random_relation(4, 100, seed=1)
        with pytest.raises(ValueError, match="match"):
            evaluate_schedule(sched, other, m=2)

    def test_ratio_of_optimal_schedule_is_near_one(self):
        rel = uniform_random_relation(64, 5000, seed=2)
        rep = evaluate_schedule(offline_optimal_schedule(rel, 16), m=16)
        assert rep.ratio <= 1.01


class TestBSPgRoutingTime:
    def test_proposition_6_1(self):
        rel = one_to_all_relation(65)
        assert bsp_g_routing_time(rel, g=4.0) == 4.0 * 64

    def test_latency_floor(self):
        rel = tiny_rel()
        assert bsp_g_routing_time(rel, g=1.0, L=100.0) == 100.0

    def test_bad_gap(self):
        with pytest.raises(ValueError):
            bsp_g_routing_time(tiny_rel(), g=0.5)

    def test_separation_under_skew(self):
        """The headline claim: under one-to-all skew, BSP(g) pays Θ(g) more
        than the BSP(m) schedule."""
        p, m = 256, 32
        g = p / m
        rel = one_to_all_relation(p)
        bspg = bsp_g_routing_time(rel, g=g)
        rep = evaluate_schedule(unbalanced_send(rel, m, 0.1, seed=3), m=m)
        assert bspg / rep.completion_time >= g * 0.9
