"""Tests for the footnote-2 two-parameter model and the QSM-on-BSP
shared-memory emulation."""

import operator

import pytest

from repro import BSPg, BSPm, MachineParams, QSMm, SelfSchedulingBSPm, TwoLevelBSP
from repro.algorithms import run_qsm_program_on_bsp
from repro.algorithms.prefix import reduce_funnel_qsm_program
from repro.core.engine import ProgramError


def one_to_all_prog(ctx):
    if ctx.pid == 0:
        for d in range(1, ctx.nprocs):
            ctx.send(d, d)
    yield


class TestTwoLevelBSP:
    def test_additive_charge(self):
        mach = TwoLevelBSP(MachineParams(p=8, L=1), g1=4.0, g2=2.0)
        res = mach.run(one_to_all_prog)
        assert res.time == pytest.approx(4.0 * 7 / 8 + 2.0 * 7)

    def test_latency_floor(self):
        mach = TwoLevelBSP(MachineParams(p=4, L=50), g1=1.0, g2=1.0)
        def prog(ctx):
            if ctx.pid == 0:
                ctx.send(1, "x")
            yield
        assert mach.run(prog).time == 50.0

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ValueError):
            TwoLevelBSP(MachineParams(p=4), g1=-1.0)

    def test_footnote_2_similarity(self):
        """With g1 = p/m, g2 = 1 the additive metric brackets the
        self-scheduling max-metric within a factor of 2 on any superstep."""
        p, m = 64, 8
        two = TwoLevelBSP(MachineParams(p=p, L=1), g1=p / m, g2=1.0)
        self_s = SelfSchedulingBSPm(MachineParams(p=p, m=m, L=1))

        def skewed(ctx):
            if ctx.pid == 0:
                for d in range(1, ctx.nprocs):
                    ctx.send(d, d, slot=d - 1)
            yield

        def balanced(ctx):
            ctx.send((ctx.pid + 1) % ctx.nprocs, "x", slot=0)
            yield

        for prog in (skewed, balanced, one_to_all_prog):
            t_two = two.run(prog).time
            t_max = self_s.run(prog).time
            assert t_max <= t_two <= 2 * t_max + 1e-9, prog.__name__


class TestQSMOnBSP:
    def test_emulated_reduce_correct(self):
        p, m = 64, 8
        vals = [float(i) for i in range(p)]
        res = run_qsm_program_on_bsp(
            BSPm(MachineParams(p=p, m=m, L=2)),
            reduce_funnel_qsm_program,
            args=(operator.add, min(p, m), 2),
            per_proc_args=[(v,) for v in vals],
        )
        assert res.results[0] == sum(vals)

    def test_same_answer_as_native_qsm(self):
        p, m = 32, 4
        vals = [float(i * i) for i in range(p)]
        args = (operator.add, min(p, m), 2)
        emulated = run_qsm_program_on_bsp(
            BSPg(MachineParams(p=p, g=4.0, L=1)),
            reduce_funnel_qsm_program,
            args=args,
            per_proc_args=[(v,) for v in vals],
        )
        native = QSMm(MachineParams(p=p, m=m)).run(
            reduce_funnel_qsm_program, args=args, per_proc_args=[(v,) for v in vals]
        )
        assert emulated.results[0] == native.results[0]

    def test_constant_factor_overhead(self):
        """3 supersteps per phase: the emulated time is a constant multiple
        of the native QSM(m) time (L floors included)."""
        p, m = 64, 8
        vals = [1.0] * p
        args = (operator.add, min(p, m), 2)
        emu = run_qsm_program_on_bsp(
            BSPm(MachineParams(p=p, m=m, L=1)),
            reduce_funnel_qsm_program,
            args=args,
            per_proc_args=[(v,) for v in vals],
        )
        nat = QSMm(MachineParams(p=p, m=m)).run(
            reduce_funnel_qsm_program, args=args, per_proc_args=[(v,) for v in vals]
        )
        assert emu.time <= 8 * nat.time

    def test_write_then_read_across_phases(self):
        def prog(ctx):
            ctx.write(("cell", ctx.pid), ctx.pid * 10)
            yield
            h = ctx.read(("cell", (ctx.pid + 1) % ctx.nprocs))
            yield
            return h.value

        res = run_qsm_program_on_bsp(
            BSPm(MachineParams(p=8, m=2, L=1)), prog
        )
        assert res.results == [(i + 1) % 8 * 10 for i in range(8)]

    def test_premature_value_access_raises(self):
        def prog(ctx):
            h = ctx.read("x")
            _ = h.value  # before the yield
            yield

        with pytest.raises(ProgramError, match="not yet resolved"):
            run_qsm_program_on_bsp(BSPm(MachineParams(p=2, m=1)), prog)

    def test_direct_send_blocked(self):
        def prog(ctx):
            ctx.send(0, "x")
            yield

        with pytest.raises(ProgramError, match="cannot send"):
            run_qsm_program_on_bsp(BSPm(MachineParams(p=2, m=1)), prog)

    def test_rejects_shared_memory_machine(self):
        with pytest.raises(ValueError):
            run_qsm_program_on_bsp(QSMm(MachineParams(p=2, m=1)), lambda ctx: None)

    def test_unwritten_cell_reads_none(self):
        def prog(ctx):
            h = ctx.read(("never", ctx.pid))
            yield
            return h.value

        res = run_qsm_program_on_bsp(BSPm(MachineParams(p=4, m=2)), prog)
        assert res.results == [None] * 4
