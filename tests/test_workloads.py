"""Tests for h-relation generators and the HRelation invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    HRelation,
    all_to_one_relation,
    balanced_h_relation,
    geometric_h_relation,
    one_to_all_relation,
    permutation_relation,
    total_exchange_relation,
    two_class_relation,
    uniform_random_relation,
    variable_length_relation,
    zipf_h_relation,
)


class TestHRelationInvariants:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            HRelation(p=4, src=np.array([0]), dest=np.array([1, 2]), length=np.array([1]))

    def test_out_of_range_src(self):
        with pytest.raises(ValueError):
            HRelation(p=2, src=np.array([5]), dest=np.array([0]), length=np.array([1]))

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            HRelation(p=2, src=np.array([0]), dest=np.array([1]), length=np.array([0]))

    def test_basic_stats(self):
        rel = HRelation(
            p=3,
            src=np.array([0, 0, 1]),
            dest=np.array([1, 2, 2]),
            length=np.array([2, 3, 1]),
        )
        assert rel.n == 6
        assert rel.n_messages == 3
        assert rel.sizes.tolist() == [5, 1, 0]
        assert rel.recv_sizes.tolist() == [0, 2, 4]
        assert rel.x_bar == 5 and rel.y_bar == 4 and rel.h == 5
        assert rel.max_length == 3
        assert rel.mean_length == pytest.approx(2.0)

    def test_lower_bounds(self):
        rel = one_to_all_relation(9)
        assert rel.bsp_g_lower_bound(g=2.0, L=3.0) == 2.0 * (8 + 1) + 3.0
        assert rel.bsp_m_lower_bound(m=4) == 8.0  # x_bar dominates n/m

    def test_imbalance(self):
        rel = one_to_all_relation(8)
        assert rel.imbalance() == pytest.approx(8.0)  # x̄ / (n/p) = 7/(7/8)

    def test_concat(self):
        a = one_to_all_relation(4)
        b = all_to_one_relation(4)
        c = a.concat(b)
        assert c.n == a.n + b.n
        with pytest.raises(ValueError):
            a.concat(one_to_all_relation(5))

    def test_from_counts(self):
        counts = np.array([3, 0, 2])
        rel = HRelation.from_counts(counts, dest_rng=0)
        assert rel.sizes.tolist() == [3, 0, 2]
        assert np.all(rel.src != rel.dest)  # no self-sends


class TestGenerators:
    def test_balanced_is_balanced(self):
        rel = balanced_h_relation(16, 4, seed=0)
        assert rel.x_bar == 4 and rel.y_bar == 4
        assert rel.n == 64

    def test_balanced_zero_h(self):
        rel = balanced_h_relation(4, 0)
        assert rel.n == 0

    def test_permutation(self):
        rel = permutation_relation(32, seed=1)
        assert rel.x_bar == rel.y_bar == 1
        assert sorted(rel.dest.tolist()) == list(range(32))

    def test_one_to_all(self):
        rel = one_to_all_relation(8, root=3)
        assert rel.x_bar == 7 and rel.y_bar == 1
        assert set(rel.src.tolist()) == {3}
        assert 3 not in rel.dest.tolist()

    def test_all_to_one(self):
        rel = all_to_one_relation(8, root=2)
        assert rel.y_bar == 7 and rel.x_bar == 1
        assert set(rel.dest.tolist()) == {2}

    def test_total_exchange(self):
        rel = total_exchange_relation(5)
        assert rel.n_messages == 20
        assert rel.x_bar == rel.y_bar == 4

    def test_total_exchange_variable(self):
        rel = total_exchange_relation(5, seed=0, max_length=7)
        assert rel.length.min() >= 1 and rel.length.max() <= 7

    def test_uniform_random(self):
        rel = uniform_random_relation(64, 10_000, seed=2)
        assert rel.n == 10_000
        # mild imbalance only
        assert rel.imbalance() < 2.0
        assert np.all(rel.src != rel.dest)

    def test_zipf_heavy_tail(self):
        rel = zipf_h_relation(256, 50_000, alpha=1.5, seed=3)
        assert rel.n == 50_000
        assert rel.imbalance() > 10.0  # the heavy sender dominates

    def test_zipf_reproducible(self):
        a = zipf_h_relation(64, 1000, seed=9)
        b = zipf_h_relation(64, 1000, seed=9)
        assert np.array_equal(a.src, b.src) and np.array_equal(a.dest, b.dest)

    def test_geometric_skew(self):
        rel = geometric_h_relation(32, base_count=1024, ratio=0.5, seed=4)
        sizes = np.sort(rel.sizes)[::-1]
        assert sizes[0] == 1024
        assert rel.imbalance() > 5.0

    def test_geometric_bad_ratio(self):
        with pytest.raises(ValueError):
            geometric_h_relation(8, 10, ratio=1.5)

    def test_two_class(self):
        rel = two_class_relation(100, heavy_fraction=0.1, heavy_count=50, light_count=2, seed=5)
        sizes = rel.sizes
        assert int(np.sum(sizes == 50)) == 10
        assert int(np.sum(sizes == 2)) == 90

    def test_two_class_bad_fraction(self):
        with pytest.raises(ValueError):
            two_class_relation(10, heavy_fraction=1.5, heavy_count=5)

    @pytest.mark.parametrize("dist", ["geometric", "uniform", "pareto"])
    def test_variable_length(self, dist):
        rel = variable_length_relation(32, 500, mean_length=8.0, dist=dist, seed=6)
        assert rel.n_messages == 500
        assert rel.length.min() >= 1

    def test_variable_length_cap(self):
        rel = variable_length_relation(8, 100, mean_length=20, dist="pareto", max_length=25, seed=7)
        assert rel.max_length <= 25

    def test_variable_length_bad_dist(self):
        with pytest.raises(ValueError):
            variable_length_relation(8, 10, dist="bogus")


@settings(max_examples=40, deadline=None)
@given(
    p=st.integers(2, 64),
    n=st.integers(0, 500),
    seed=st.integers(0, 2**31),
)
def test_uniform_random_properties(p, n, seed):
    """Conservation laws: flits sent == flits received == n; maxima bound
    the per-processor arrays."""
    rel = uniform_random_relation(p, n, seed=seed)
    assert int(rel.sizes.sum()) == rel.n == n
    assert int(rel.recv_sizes.sum()) == rel.n
    assert rel.x_bar == (rel.sizes.max() if p else 0)
    assert rel.h >= rel.n / p  # pigeonhole


@settings(max_examples=30, deadline=None)
@given(
    p=st.integers(2, 32),
    counts=st.lists(st.integers(0, 50), min_size=2, max_size=32),
)
def test_from_counts_properties(p, counts):
    counts = np.asarray(counts[:p] + [0] * max(0, p - len(counts)))
    rel = HRelation.from_counts(counts, dest_rng=0)
    assert np.array_equal(rel.sizes, counts)
    assert np.all(rel.src != rel.dest)
