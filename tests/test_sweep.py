"""Tests for the parallel sweep engine: seed derivation, spec expansion,
pool-vs-serial bit-identity, worker-crash surfacing, memo cache, telemetry."""

import json

import numpy as np
import pytest

from repro.experiments import list_experiments, run_experiment
from repro.scheduling import evaluate_schedule, offline_optimal_schedule
from repro.sweep import (
    SweepSpec,
    TrialExecutionError,
    cache_stats,
    cached_offline_report,
    cached_offline_schedule,
    clear_cache,
    grid_points,
    parse_on_error,
    resolve_jobs,
    run_sweep,
)
from repro.util.rng import (
    as_generator,
    derive_generator,
    derive_seed_sequence,
    describe_seed,
)
from repro.workloads import uniform_random_relation


# ---------------------------------------------------------------------------
# module-level trial functions (pool workers pickle them by reference)

def _double(x, seed):
    return 2 * x


def _draw(width, seed):
    return float(as_generator(seed).uniform(0.0, width))


def _record_seed(seed):
    return describe_seed(seed)


def _boom(x, seed):
    if x == 3:
        raise ValueError("injected trial failure")
    return x


#: per-process attempt counter for the flaky trial fn (retries happen in
#: the same process, so this is visible across attempts)
_FLAKY_CALLS = {}


def _flaky(x, seed):
    n = _FLAKY_CALLS.get(x, 0) + 1
    _FLAKY_CALLS[x] = n
    if n == 1:
        raise ValueError("flaky first attempt")
    return x


def _die(x, seed):
    if x == 3:
        import os

        os._exit(13)  # hard worker death, no traceback, no cleanup
    return x


class TestDeriveSeedSequence:
    def test_stable(self):
        a = derive_seed_sequence(7, "exp", "point", 2)
        b = derive_seed_sequence(7, "exp", "point", 2)
        assert a.entropy == b.entropy
        assert tuple(a.spawn_key) == tuple(b.spawn_key)
        assert np.array_equal(a.generate_state(4), b.generate_state(4))

    def test_distinct_paths_distinct_streams(self):
        paths = [("exp", "a", 0), ("exp", "a", 1), ("exp", "b", 0), ("other", "a", 0)]
        states = [tuple(derive_seed_sequence(0, *p).generate_state(4)) for p in paths]
        assert len(set(states)) == len(states)

    def test_component_boundaries_do_not_collide(self):
        # ("ab", "c") vs ("a", "bc") — each component hashes independently
        a = derive_seed_sequence(0, "ab", "c")
        b = derive_seed_sequence(0, "a", "bc")
        assert tuple(a.spawn_key) != tuple(b.spawn_key)

    def test_int_and_str_components_differ(self):
        a = derive_seed_sequence(0, "exp", 5)
        b = derive_seed_sequence(0, "exp", "5")
        assert tuple(a.spawn_key) != tuple(b.spawn_key)

    def test_nesting_extends_path(self):
        base = derive_seed_sequence(0, "exp")
        nested = derive_seed_sequence(base, "trial", 1)
        flat = derive_seed_sequence(0, "exp", "trial", 1)
        assert tuple(nested.spawn_key) == tuple(flat.spawn_key)

    def test_generator_root_rejected(self):
        with pytest.raises(TypeError, match="Generator"):
            derive_seed_sequence(np.random.default_rng(0), "exp")

    def test_float_component_rejected(self):
        with pytest.raises(TypeError, match="int or str"):
            derive_seed_sequence(0, 1.5)

    def test_derive_generator_matches_sequence(self):
        g = derive_generator(3, "exp", 0)
        h = np.random.default_rng(derive_seed_sequence(3, "exp", 0))
        assert g.integers(0, 1 << 30, 8).tolist() == h.integers(0, 1 << 30, 8).tolist()

    def test_describe_seed_replays(self):
        seq = derive_seed_sequence(11, "exp", "pt", 4)
        replayed = eval(describe_seed(seq), {"SeedSequence": np.random.SeedSequence})
        assert np.array_equal(seq.generate_state(4), replayed.generate_state(4))


class TestSweepSpec:
    def test_task_expansion_points_major(self):
        spec = SweepSpec(
            name="s", fn=_double, grid={"a": {"x": 1}, "b": {"x": 2}}, trials=3
        )
        tasks = spec.tasks()
        assert [(t.point, t.trial) for t in tasks] == [
            ("a", 0), ("a", 1), ("a", 2), ("b", 0), ("b", 1), ("b", 2)
        ]
        assert [t.index for t in tasks] == list(range(6))
        assert tasks[0].label == "s[a:0]"

    def test_sequence_grid_gets_derived_keys(self):
        spec = SweepSpec(name="s", fn=_double, grid=[{"x": 1}, {"x": 2}])
        assert spec.point_keys == ["x=1", "x=2"]

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(name="s", fn=_double, grid=[{"x": 1}, {"x": 1}])

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SweepSpec(name="s", fn=_double, grid=[])

    def test_bad_trials_rejected(self):
        with pytest.raises(ValueError, match="trials"):
            SweepSpec(name="s", fn=_double, grid=[{"x": 1}], trials=0)

    def test_task_seed_matches_expanded_tasks(self):
        spec = SweepSpec(name="s", fn=_record_seed, grid={"a": {}}, trials=2, seed=9)
        for task in spec.tasks():
            assert describe_seed(task.seed) == describe_seed(
                spec.task_seed(task.point, task.trial)
            )

    def test_common_params_merged_point_wins(self):
        spec = SweepSpec(
            name="s", fn=_double, grid={"a": {"x": 5}}, common={"x": 1}
        )
        assert spec.tasks()[0].params == {"x": 5}

    def test_grid_points_product(self):
        pts = grid_points(p=[64, 128], L=[1.0, 4.0])
        assert len(pts) == 4
        assert {"p": 64, "L": 4.0} in pts


class TestRunSweep:
    def test_serial_results_in_task_order(self):
        spec = SweepSpec(name="s", fn=_double, grid=[{"x": i} for i in range(5)])
        res = run_sweep(spec, jobs=1)
        assert res.results == [0, 2, 4, 6, 8]
        assert res.jobs == 1 and res.trials == 5

    def test_pool_identical_to_serial(self):
        spec = SweepSpec(
            name="s", fn=_draw, grid={"w": {"width": 10.0}}, trials=16, seed=3
        )
        serial = run_sweep(spec, jobs=1)
        pooled = run_sweep(spec, jobs=4)
        assert pooled.results == serial.results
        assert pooled.jobs == 4

    def test_auto_jobs(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)
        assert resolve_jobs(3) == 3
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)

    def test_single_task_short_circuits_pool(self):
        spec = SweepSpec(name="s", fn=_double, grid=[{"x": 4}])
        res = run_sweep(spec, jobs=8)
        assert res.results == [8]
        assert res.n_workers == 1

    def test_results_by_point(self):
        spec = SweepSpec(
            name="s", fn=_double, grid={"a": {"x": 1}, "b": {"x": 2}}, trials=2
        )
        by_point = run_sweep(spec, jobs=1).results_by_point()
        assert by_point == {"a": [2, 2], "b": [4, 4]}


class TestWorkerCrash:
    #: grid where point "x=3" raises inside the trial fn
    GRID = [{"x": i} for i in range(6)]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_error_carries_seed_and_params(self, jobs):
        spec = SweepSpec(name="crashy", fn=_boom, grid=self.GRID, seed=17)
        with pytest.raises(TrialExecutionError) as excinfo:
            run_sweep(spec, jobs=jobs, chunksize=2)
        err = excinfo.value
        msg = str(err)
        # names the failing trial, its params, and the original exception
        assert err.label == "crashy[x=3:0]"
        assert "x=3" in err.params_desc
        assert "injected trial failure" in msg
        # the seed line is a replayable SeedSequence expression for that cell
        expected = describe_seed(spec.task_seed("x=3", 0))
        assert err.seed_desc == expected
        assert expected in msg

    def test_pool_error_includes_worker_traceback(self):
        spec = SweepSpec(name="crashy", fn=_boom, grid=self.GRID)
        with pytest.raises(TrialExecutionError) as excinfo:
            run_sweep(spec, jobs=2, chunksize=2)
        assert "_boom" in excinfo.value.worker_traceback

    def test_large_params_are_clipped_in_message(self):
        rel = uniform_random_relation(64, 500, seed=0)
        spec = SweepSpec(name="crashy", fn=_boom, grid={"pt": {"x": 3, "rel": rel}})
        with pytest.raises(TrialExecutionError) as excinfo:
            run_sweep(spec, jobs=1)
        assert "<HRelation n=500>" in excinfo.value.params_desc


class TestOnErrorPolicy:
    GRID = [{"x": i} for i in range(6)]

    def test_parse_on_error(self):
        assert parse_on_error("raise") == ("raise", 0)
        assert parse_on_error("skip") == ("skip", 0)
        assert parse_on_error("retry:3") == ("retry", 3)
        for bad in ("retry", "retry:0", "retry:x", "ignore"):
            with pytest.raises(ValueError):
                parse_on_error(bad)

    def test_raise_is_the_default(self):
        spec = SweepSpec(name="crashy", fn=_boom, grid=self.GRID)
        with pytest.raises(TrialExecutionError):
            run_sweep(spec, jobs=1)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_skip_records_and_continues(self, jobs):
        spec = SweepSpec(name="crashy", fn=_boom, grid=self.GRID)
        res = run_sweep(spec, jobs=jobs, chunksize=2, on_error="skip")
        assert res.results[3] is None  # the failed cell
        assert [r for i, r in enumerate(res.results) if i != 3] == [0, 1, 2, 4, 5]
        assert res.skipped == 1
        skipped = [t for t in res.records if t.status == "skipped"]
        assert len(skipped) == 1
        assert "injected trial failure" in skipped[0].error

    def test_retry_recovers_flaky_trials(self):
        _FLAKY_CALLS.clear()
        spec = SweepSpec(name="flaky", fn=_flaky, grid=self.GRID)
        res = run_sweep(spec, jobs=1, on_error="retry:2")
        assert res.results == [0, 1, 2, 3, 4, 5]  # every trial recovered
        assert res.skipped == 0
        assert res.retried == 6 and res.retries == 6  # one retry each

    def test_retry_exhaustion_skips(self):
        spec = SweepSpec(name="crashy", fn=_boom, grid=self.GRID)
        res = run_sweep(spec, jobs=1, on_error="retry:2")
        assert res.results[3] is None
        assert res.skipped == 1
        (rec,) = [t for t in res.records if t.status == "skipped"]
        assert rec.attempts == 3  # 1 try + 2 retries

    def test_telemetry_carries_error_columns(self):
        spec = SweepSpec(name="crashy", fn=_boom, grid=self.GRID)
        res = run_sweep(spec, jobs=1, on_error="skip")
        tel = res.telemetry()
        assert tel["errors"] == {"skipped": 1, "retried": 0, "retries": 0}
        cols = res.to_dict()["trial_columns"]
        assert cols["status"].count("skipped") == 1
        assert any("injected trial failure" in e for e in cols["error"])

    def test_hard_worker_death_skips_exactly_one_task(self):
        """A worker dying without a traceback (``os._exit``) must not kill
        the sweep under skip — and with per-task dispatch it loses exactly
        the one in-flight trial, never a chunk: every other result is
        present and correct, and the death is visible in telemetry."""
        spec = SweepSpec(name="deadly", fn=_die, grid=self.GRID)
        res = run_sweep(spec, jobs=2, chunksize=1, on_error="skip")
        assert res.results == [0, 1, 2, None, 4, 5]
        assert res.skipped == 1
        (rec,) = [t for t in res.records if t.status == "skipped"]
        assert rec.point == "x=3"
        assert "WorkerDied" in rec.error
        assert res.backend == "pool-steal"
        assert res.backend_stats["worker_deaths"] == 1
        assert res.telemetry()["backend"]["worker_deaths"] == 1

    def test_invalid_policy_rejected_up_front(self):
        spec = SweepSpec(name="s", fn=_double, grid=[{"x": 1}])
        with pytest.raises(ValueError, match="on_error"):
            run_sweep(spec, jobs=1, on_error="explode")


class TestMemoCache:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        clear_cache()
        yield
        clear_cache()

    def test_schedule_hit_on_second_call(self):
        rel = uniform_random_relation(64, 2000, seed=5)
        a = cached_offline_schedule(rel, 8)
        b = cached_offline_schedule(rel, 8)
        assert b is a
        stats = cache_stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_report_matches_direct_evaluation(self):
        rel = uniform_random_relation(64, 2000, seed=5)
        cached = cached_offline_report(rel, 8, L=2.0)
        direct = evaluate_schedule(offline_optimal_schedule(rel, 8), m=8, L=2.0)
        assert cached.to_dict() == direct.to_dict()

    def test_pricing_variants_share_the_schedule(self):
        from repro.core.costs import LINEAR

        rel = uniform_random_relation(64, 2000, seed=5)
        cached_offline_report(rel, 8, L=1.0)
        before = cache_stats()
        cached_offline_report(rel, 8, L=4.0)  # new report key, same schedule
        cached_offline_report(rel, 8, L=1.0, penalty=LINEAR)
        after = cache_stats()
        # each variant re-prices (report miss) but hits the schedule layer
        assert after.hits == before.hits + 2
        assert after.entries == before.entries + 2  # only new reports stored

    def test_distinct_relations_do_not_collide(self):
        a = uniform_random_relation(64, 2000, seed=1)
        b = uniform_random_relation(64, 2000, seed=2)
        assert a.fingerprint() != b.fingerprint()
        ra = cached_offline_report(a, 8)
        rb = cached_offline_report(b, 8)
        assert ra.completion_time != rb.completion_time or ra is not rb

    def test_clear_resets_counters(self):
        rel = uniform_random_relation(64, 1000, seed=3)
        cached_offline_schedule(rel, 8)
        clear_cache()
        stats = cache_stats()
        assert stats.hits == stats.misses == stats.entries == 0


class TestTelemetry:
    def _result(self, jobs=1):
        spec = SweepSpec(
            name="tel", fn=_draw, grid={"w": {"width": 1.0}}, trials=8, seed=0
        )
        return run_sweep(spec, jobs=jobs)

    def test_columns_and_aggregates(self):
        res = self._result()
        assert res.wall_times.shape == (8,)
        assert (res.wall_times >= 0).all()
        assert res.busy_time == pytest.approx(float(res.wall_times.sum()))
        assert 0.0 < res.utilization <= 1.0 + 1e-9
        assert res.n_workers == 1
        assert res.workers.dtype == np.int64

    def test_telemetry_block_is_json_ready(self):
        tel = self._result().telemetry()
        json.dumps(tel)
        assert tel["trials"] == 8
        assert set(tel["cache"]) == {"hits", "misses", "hit_rate"}

    def test_to_json_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.json"
        res = self._result()
        res.to_json(str(path))
        data = json.loads(path.read_text())
        assert data["results"] == res.results
        assert data["trial_columns"]["point"] == ["w"] * 8
        slim = res.to_dict(include_trials=False)
        assert "results" not in slim and "trial_columns" not in slim


#: tiny parameterizations so the full registry runs in seconds
SMALL_KWARGS = {
    "table1_measured": dict(p=64, m=8, L=4.0),
    "unbalanced_send": dict(p=128, m=16, n=5000, trials=4),
    "dynamic_stability": dict(p=64, m=8, w=64, horizon=2000),
    "leader_gap": dict(m=8),
    "self_scheduling": dict(p=128, m=16, trials=4),
    "stability_under_loss": dict(p=32, m=8, w=16, horizon=600),
    "sensitivity_grid": dict(
        p_values=(64, 256), g_values=(2.0,), L_values=(4.0,), y_grid=400
    ),
    "pricing_ablation": dict(
        p=32, n=2000, schedule_m=8, m_values=(4, 8), L_values=(1.0, 4.0)
    ),
}


class TestPoolSerialIdentity:
    """The headline invariant: for every registered experiment, a 4-job pool
    run is bit-identical to the serial run at the same seed."""

    @pytest.mark.parametrize("name", sorted(SMALL_KWARGS))
    def test_jobs4_matches_jobs1(self, name):
        kwargs = SMALL_KWARGS[name]
        serial = run_experiment(name, seed=42, jobs=1, **kwargs)
        pooled = run_experiment(name, seed=42, jobs=4, **kwargs)
        assert pooled == serial

    def test_every_experiment_is_covered(self):
        assert sorted(SMALL_KWARGS) == list_experiments()
