"""Tests for one-to-all personalized communication and
parity/summation/prefix sums (Table 1 rows 1 and 3)."""

import functools
import operator

import pytest

from repro import BSPg, BSPm, MachineParams, QSMg, QSMm
from repro.algorithms import one_to_all, parity, prefix_sums, reduce_all, summation
from repro.theory.bounds import (
    one_to_all_bsp_g,
    one_to_all_bsp_m,
    one_to_all_qsm_g,
    one_to_all_qsm_m,
    parity_bsp_m,
    parity_qsm_m,
)


class TestOneToAll:
    def test_correct_all_models(self, all_machines):
        for name, mach in all_machines.items():
            mach.shared_memory.clear()
            res = one_to_all(mach)
            assert res.results == list(range(mach.params.p)), name

    def test_custom_payloads_and_root(self):
        mach = BSPm(MachineParams(p=8, m=2, L=1))
        payloads = [f"msg{i}" for i in range(8)]
        res = one_to_all(mach, payloads, root=3)
        assert res.results == payloads

    def test_payload_length_checked(self):
        mach = BSPm(MachineParams(p=8, m=2))
        with pytest.raises(ValueError):
            one_to_all(mach, payloads=[1, 2])

    def test_root_range_checked(self):
        mach = BSPm(MachineParams(p=8, m=2))
        with pytest.raises(ValueError):
            one_to_all(mach, root=8)

    def test_theta_g_separation(self, matched_medium):
        """The paper's opening example: g(p-1) vs p-1."""
        local, global_ = matched_medium
        g = local.g
        t_local = one_to_all(BSPg(local)).time
        t_global = one_to_all(BSPm(global_)).time
        assert t_local / t_global >= 0.9 * g

    def test_measured_matches_bounds(self, matched_medium):
        local, global_ = matched_medium
        p, m, L, g = local.p, global_.m, local.L, local.g
        assert one_to_all(BSPg(local)).time <= 1.1 * one_to_all_bsp_g(p, g, L)
        assert one_to_all(BSPm(global_)).time <= 1.1 * one_to_all_bsp_m(p, m, L)
        assert one_to_all(QSMg(local)).time <= 1.1 * one_to_all_qsm_g(p, g)
        assert one_to_all(QSMm(global_)).time <= 1.2 * one_to_all_qsm_m(p, m)


class TestReductions:
    def test_summation_all_models(self, all_machines):
        p = 64
        values = [i * i for i in range(p)]
        for name, mach in all_machines.items():
            mach.shared_memory.clear()
            res, total = summation(mach, values)
            assert total == sum(values), name

    def test_parity_all_models(self, all_machines):
        bits = [1 if i % 3 == 0 else 0 for i in range(64)]
        expected = functools.reduce(operator.xor, bits)
        for name, mach in all_machines.items():
            mach.shared_memory.clear()
            res, val = parity(mach, bits)
            assert val == expected, name

    def test_parity_rejects_non_bits(self):
        mach = BSPm(MachineParams(p=4, m=2))
        with pytest.raises(ValueError):
            parity(mach, [0, 1, 2, 0])

    def test_custom_op(self):
        mach = BSPm(MachineParams(p=16, m=4, L=2))
        res, val = reduce_all(mach, list(range(16)), op=max)
        assert val == 15

    def test_value_count_checked(self):
        mach = BSPm(MachineParams(p=4, m=2))
        with pytest.raises(ValueError):
            summation(mach, [1, 2])

    def test_m_model_faster_than_g_model(self, matched_medium):
        local, global_ = matched_medium
        values = [1.0] * local.p
        t_local = summation(BSPg(local), values)[0].time
        t_global = summation(BSPm(global_), values)[0].time
        assert t_global < t_local
        tq_local = summation(QSMg(local), values)[0].time
        tq_global = summation(QSMm(global_), values)[0].time
        assert tq_global < tq_local

    def test_m_model_time_tracks_bound(self, matched_medium):
        local, global_ = matched_medium
        p, m, L = local.p, global_.m, local.L
        values = [1.0] * p
        t_bsp = summation(BSPm(global_), values)[0].time
        assert t_bsp <= 4 * parity_bsp_m(p, m, L)
        t_qsm = summation(QSMm(global_), values)[0].time
        assert t_qsm <= 4 * parity_qsm_m(p, m)

    @pytest.mark.parametrize("p", [1, 2, 7, 33])
    def test_odd_sizes(self, p):
        mach = BSPm(MachineParams(p=p, m=max(1, p // 3), L=2))
        res, total = summation(mach, list(range(p)))
        assert total == sum(range(p))


class TestPrefixSums:
    @pytest.mark.parametrize("p", [1, 2, 3, 8, 13, 64, 100])
    def test_correct(self, p):
        mach = BSPm(MachineParams(p=p, m=max(1, p // 4), L=1))
        res, out = prefix_sums(mach, list(range(p)))
        assert out == [sum(range(i + 1)) for i in range(p)]

    def test_non_commutative_op(self):
        """Prefix with string concatenation checks left-to-right order."""
        p = 16
        mach = BSPg(MachineParams(p=p, g=2.0, L=1))
        values = [chr(ord("a") + i) for i in range(p)]
        res, out = prefix_sums(mach, values, op=operator.add)
        assert out == ["".join(values[: i + 1]) for i in range(p)]

    def test_no_overload_on_bspm(self):
        mach = BSPm(MachineParams(p=128, m=4, L=1))
        res, out = prefix_sums(mach, [1] * 128)
        assert res.stat_max("overloaded_slots") == 0
        assert out == list(range(1, 129))

    @pytest.mark.parametrize("p", [1, 2, 3, 8, 13, 64])
    def test_qsm_machines_supported(self, p):
        for mach in (
            QSMg(MachineParams(p=p, g=2.0)),
            QSMm(MachineParams(p=p, m=max(1, p // 4))),
        ):
            res, out = prefix_sums(mach, list(range(p)))
            assert out == [sum(range(i + 1)) for i in range(p)]

    def test_qsm_m_no_overload(self):
        mach = QSMm(MachineParams(p=128, m=8))
        res, out = prefix_sums(mach, [1] * 128)
        assert out == list(range(1, 129))
        assert res.stat_max("overloaded_slots") == 0

    def test_length_checked(self):
        mach = BSPm(MachineParams(p=4, m=2))
        with pytest.raises(ValueError):
            prefix_sums(mach, [1])
