"""Tests for the unified observability layer (``repro.obs``).

The layer's contract has three legs, each pinned here:

* **disabled = free and invisible** — with no tracer/registry installed
  (the default), every instrumented layer produces bit-identical model
  times to a build without the hooks;
* **enabled = reconcilable** — traced span durations sum exactly to the
  engine's cost accounting (superstep spans vs ``RunResult.time``, round
  spans vs ``TransportResult.time``), and the exported Chrome trace is
  valid ``trace_event`` JSON whose model-time events reproduce the run's
  cost breakdown;
* **mergeable** — metrics, ledgers and span trees aggregated across sweep
  workers (``jobs=N``) are bit-identical to the serial run (``jobs=1``).

The load-ledger leg additionally pins the paper-level claim: the ledger's
per-superstep ``binding`` column says which restriction — the local
per-processor limit ``g·h`` or the global aggregate limit ``f(m)`` —
priced each barrier, its summed charges reconcile exactly with the
model's :class:`~repro.core.costs.CostBreakdown` on every model, and the
verdict genuinely *disagrees* between locally-limited and
globally-limited twin machines on workloads the paper separates.
"""

import json

import numpy as np
import pytest

from repro import BSPg, BSPm, MachineParams, QSMg, QSMm, SelfSchedulingBSPm
from repro.algorithms import broadcast, one_to_all, summation
from repro.faults import FaultPlan
from repro.faults.chaos import chaos_trial
from repro.obs import (
    LoadLedger,
    MetricsRegistry,
    Tracer,
    active_ledger,
    active_metrics,
    active_tracer,
    binding_of,
    build_manifest,
    chrome_trace,
    compare_bench,
    compare_files,
    cost_attribution_table,
    ledger_scope,
    ledger_table,
    manifest_path,
    metrics_scope,
    prometheus_exposition,
    tracing,
    write_chrome_trace,
)
from repro.obs.compare import classify
from repro.obs.metrics import Histogram
from repro.scheduling import route_reliable, unbalanced_send
from repro.scheduling.execute import execute_schedule
from repro.sweep import TELEMETRY_SCHEMA_VERSION, SweepSpec, run_sweep
from repro.workloads import uniform_random_relation


def _machine(p=64, m=8, L=4.0, plan=None):
    machine = BSPm(MachineParams(p=p, m=m, L=L))
    if plan is not None:
        machine.inject_faults(plan)
    return machine


def _routed_run(tracer=None):
    """The small routing profile used throughout: deterministic model time."""
    rel = uniform_random_relation(32, 2_000, seed=0)
    sched = unbalanced_send(rel, 8, 0.2, seed=1)
    machine = _machine(p=32, m=8, L=1.0)
    if tracer is None:
        return execute_schedule(machine, sched)
    with tracing(tracer):
        return execute_schedule(machine, sched)


class TestTracerCore:
    def test_begin_end_nesting(self):
        tr = Tracer()
        outer = tr.begin("outer", cat="a")
        inner = tr.begin("inner", cat="b")
        assert inner.parent == outer.index
        tr.end(inner)
        tr.end(outer, model_dur=5.0, extra=1)
        assert outer.model_dur == 5.0 and outer.args["extra"] == 1
        assert outer.wall_dur >= 0.0 and not tr._stack

    def test_end_tolerates_open_children(self):
        tr = Tracer()
        outer = tr.begin("outer")
        tr.begin("leaked-child")
        tr.end(outer)  # must pop past the open child
        assert not tr._stack

    def test_add_parents_to_stack_top(self):
        tr = Tracer()
        with tr.span("parent"):
            leaf = tr.add("leaf", model_start=0.0, model_dur=1.0)
        assert leaf.parent == tr.spans[0].index
        assert tr.children(tr.spans[0]) == [leaf]

    def test_find_filters(self):
        tr = Tracer()
        tr.add("a", cat="x")
        tr.add("b", cat="y")
        tr.add("a", cat="y")
        assert len(tr.find(cat="y")) == 2
        assert len(tr.find(cat="y", name="a")) == 1

    def test_tracing_scope_restores_previous(self):
        assert active_tracer() is None
        with tracing() as outer:
            assert active_tracer() is outer
            with tracing() as inner:
                assert active_tracer() is inner
            assert active_tracer() is outer
        assert active_tracer() is None


class TestDisabledIdentity:
    def test_hooks_default_off(self):
        assert active_tracer() is None
        assert active_metrics() is None

    def test_engine_model_time_bit_identical(self):
        plain = _routed_run().time
        traced_result = _routed_run(tracer=Tracer())
        assert traced_result.time == plain

    def test_broadcast_bit_identical(self):
        plain = broadcast(_machine(), 1).time
        with tracing():
            traced = broadcast(_machine(), 1).time
        assert traced == plain

    def test_reliable_route_bit_identical(self):
        def run():
            rel = uniform_random_relation(32, 1_000, seed=3)
            machine = _machine(p=32, m=8, L=1.0, plan=FaultPlan(seed=5, drop_rate=0.2))
            return route_reliable(machine, rel, seed=4)

        plain = run()
        with tracing(), metrics_scope():
            traced = run()
        assert traced.time == plain.time
        assert traced.rounds == plain.rounds
        assert traced.retried == plain.retried


class TestSpanReconciliation:
    def test_superstep_spans_sum_to_run_time(self):
        tr = Tracer()
        res = _routed_run(tracer=tr)
        supersteps = tr.find(cat="superstep")
        assert len(supersteps) == len(res.records)
        assert sum(s.model_dur for s in supersteps) == res.time

    def test_run_span_covers_the_run(self):
        tr = Tracer()
        res = _routed_run(tracer=tr)
        (run_span,) = tr.find(cat="engine", name="run")
        assert run_span.model_dur == res.time
        assert run_span.args["supersteps"] == len(res.records)
        # every superstep span is a child of the run span
        for s in tr.find(cat="superstep"):
            assert s.parent == run_span.index

    def test_superstep_args_carry_the_breakdown(self):
        tr = Tracer()
        res = _routed_run(tracer=tr)
        for span, rec in zip(tr.find(cat="superstep"), res.records):
            assert span.args["cost"] == rec.cost
            b = rec.breakdown
            for comp in ("work", "local_band", "global_band", "latency", "contention"):
                assert span.args[comp] == getattr(b, comp)
            assert span.args["dominant"] == b.dominant()

    def test_engine_phases_are_walled(self):
        # fused barrier (the default): one fused_superstep phase span;
        # legacy gather path: the three walled freeze/price/deliver spans
        from repro.core.engine import set_fused_default

        old = set_fused_default(True)
        try:
            tr = Tracer()
            _routed_run(tracer=tr)
            phases = tr.find(cat="phase")
            assert {s.name for s in phases} == {"fused_superstep"}
            set_fused_default(False)
            tr_legacy = Tracer()
            _routed_run(tracer=tr_legacy)
            legacy_phases = tr_legacy.find(cat="phase")
            assert {s.name for s in legacy_phases} == {"freeze", "price", "deliver"}
        finally:
            set_fused_default(old)
        for s in list(phases) + list(legacy_phases):
            assert s.model_dur is None and s.wall_dur >= 0.0

    def test_proc_spans_record_stragglers(self):
        tr = Tracer()
        with tracing(tr):
            broadcast(_machine(p=8, m=4, L=2.0), 1)
        procs = tr.find(cat="proc")
        assert procs, "expected per-processor spans for p <= PROC_TRACK_LIMIT"
        assert all(s.track.startswith("proc ") for s in procs)

    def test_execute_schedule_span_present(self):
        tr = Tracer()
        _routed_run(tracer=tr)
        (bridge,) = tr.find(cat="scheduling", name="execute_schedule")
        assert bridge.args["flits"] == 2_000

    def test_sequential_runs_share_one_model_axis(self):
        tr = Tracer()
        with tracing(tr):
            a = broadcast(_machine(), 1)
            b = broadcast(_machine(), 1)
        assert tr.model_clock == a.time + b.time
        runs = tr.find(cat="engine", name="run")
        assert runs[1].model_start == runs[0].model_start + runs[0].model_dur


class TestTransportSpans:
    @pytest.fixture(scope="class")
    def traced_transport(self):
        tr = Tracer()
        reg = MetricsRegistry()
        rel = uniform_random_relation(32, 1_000, seed=3)
        machine = _machine(p=32, m=8, L=1.0, plan=FaultPlan(seed=5, drop_rate=0.2))
        with tracing(tr), metrics_scope(reg):
            result = route_reliable(machine, rel, seed=4)
        return tr, reg, result

    def test_round_spans_match_protocol(self, traced_transport):
        tr, _, result = traced_transport
        rounds = tr.find(cat="transport")
        names = [s.name for s in rounds if s.name.startswith("round")]
        assert len(names) == result.rounds
        assert names[0] == "round 0" and not rounds[0].args["retry"]

    def test_backoff_spans_occupy_model_time(self, traced_transport):
        tr, _, result = traced_transport
        backoffs = tr.find(cat="transport", name="backoff")
        assert sum(s.args["steps"] for s in backoffs) == result.backoff_steps
        # rounds + backoffs lay the whole protocol on one model axis
        assert tr.model_clock == result.time

    def test_transport_and_fault_counters(self, traced_transport):
        _, reg, result = traced_transport
        counters = reg.to_dict()["counters"]
        assert counters["transport.runs"] == 1.0
        assert counters["transport.rounds"] == result.rounds
        assert counters["transport.retried"] == result.retried
        assert counters["transport.dropped"] == result.dropped
        assert counters["faults.injected"] > 0
        assert counters["faults.dropped"] == result.dropped


class TestChromeTraceExport:
    """The ISSUE acceptance criterion: the exported file is valid Chrome
    ``trace_event`` JSON and its per-superstep span durations sum to the
    run's cost breakdown."""

    def test_exported_file_reconciles_with_costs(self, tmp_path):
        tr = Tracer()
        res = _routed_run(tracer=tr)
        path = tmp_path / "trace.json"
        write_chrome_trace(tr, str(path))

        doc = json.loads(path.read_text())  # must be valid JSON
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        for e in complete:
            assert {"pid", "tid", "name", "ts", "dur", "cat", "args"} <= set(e)
        # model-time pid: superstep durations reproduce the cost breakdown
        supersteps = [e for e in complete if e["cat"] == "superstep" and e["pid"] == 1]
        assert len(supersteps) == len(res.records)
        assert sum(e["dur"] for e in supersteps) == res.time
        total_breakdown = sum(rec.cost for rec in res.records)
        assert sum(e["dur"] for e in supersteps) == total_breakdown

    def test_tracks_become_threads(self, tmp_path):
        tr = Tracer()
        _routed_run(tracer=tr)
        doc = chrome_trace(tr)
        names = [
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == 1
        ]
        assert "machine" in names
        assert any(n.startswith("proc ") for n in names)

    def test_cost_attribution_table_renders(self):
        tr = Tracer()
        res = _routed_run(tracer=tr)
        text = cost_attribution_table(tr, top=3)
        assert "cost attribution" in text and "dominant-component totals" in text
        # the same table can be built straight from the RunResult
        assert "dominant-component totals" in cost_attribution_table(res)


class TestMetrics:
    def test_instruments(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        reg.gauge("g").set(7)
        h = reg.histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        dump = reg.to_dict()
        assert dump["counters"]["c"] == 3.5
        assert dump["gauges"]["g"] == 7.0
        assert dump["histograms"]["h"]["counts"] == [1, 1, 1]
        assert dump["histograms"]["h"]["sum"] == 55.5

    def test_histogram_bucket_edges(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(1.0)  # on-edge lands in the <= 1.0 bucket
        h.observe(10.0)
        assert h.counts == [1, 1, 0]
        assert h.mean == 5.5

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(1)
        a.gauge("last").set(1)
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        b.counter("n").inc(2)
        b.gauge("last").set(2)
        b.histogram("h", bounds=(1.0,)).observe(5.0)
        a.merge(b.to_dict())
        dump = a.to_dict()
        assert dump["counters"]["n"] == 3.0
        assert dump["gauges"]["last"] == 2.0  # last write wins
        assert dump["histograms"]["h"]["counts"] == [1, 1]

    def test_merge_rejects_mismatched_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        b.histogram("h", bounds=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds"):
            a.merge(b.to_dict())

    def test_metrics_scope_restores_previous(self):
        assert active_metrics() is None
        with metrics_scope() as reg:
            assert active_metrics() is reg
        assert active_metrics() is None


def _chaos_spec(trials=4):
    return SweepSpec(
        name="chaos",
        fn=chaos_trial,
        grid={"uniform": {}},
        trials=trials,
        common=dict(
            workload="uniform", p=16, n=300, m=8, L=1.0,
            alpha=1.2, epsilon=0.15,
            drop_rate=0.1, duplicate_rate=0.0, reorder_rate=0.0,
            corrupt_rate=0.0, stalls=(), crashes=(),
            max_rounds=32, backoff_base=1, audit=False,
        ),
        seed=7,
    )


class TestSweepObservability:
    def test_metrics_identical_across_job_counts(self):
        dumps = []
        for jobs in (1, 2):
            with metrics_scope() as reg:
                run_sweep(_chaos_spec(), jobs=jobs)
            dumps.append(reg.to_dict())
        assert dumps[0] == dumps[1]  # bit-identical, not approximately

    def test_serial_trial_spans(self):
        tr = Tracer()
        with tracing(tr):
            run_sweep(_chaos_spec(), jobs=1)
        (sweep_span,) = tr.find(cat="sweep")
        trials = tr.find(cat="trial")
        assert len(trials) == 4
        assert sweep_span.args["completed"] == 4
        for s in trials:
            assert s.parent == sweep_span.index
        # the worker-side run/superstep spans are spliced under each trial
        runs = tr.find(cat="engine", name="run")
        assert runs and all(s.parent is not None for s in runs)

    def test_pool_trial_spans_are_real(self):
        # pool workers trace their trials for real and ship the spans
        # back — nothing is synthesized, and the tree matches serial
        tr = Tracer()
        with tracing(tr):
            result = run_sweep(_chaos_spec(), jobs=2)
        trials = tr.find(cat="trial")
        assert len(trials) == 4
        assert not any(s.args.get("synthesized") for s in trials)
        assert {s.track for s in trials} == {
            f"worker {w}" for w in np.unique(result.workers)
        }
        # real worker-side spans arrived underneath every trial span
        for trial in trials:
            assert tr.children(trial), f"no spliced spans under {trial.name}"

    @staticmethod
    def _span_tree(tracer):
        """Order-independent span skeleton: (name, cat, model_dur) plus
        the same triple for the parent (wall times legitimately differ
        between serial and pool runs; model facts may not)."""

        def key(s):
            parent = tracer.spans[s.parent] if s.parent is not None else None
            return (
                s.name, s.cat, s.model_dur,
                None if parent is None else (parent.name, parent.cat),
            )

        return sorted(
            key(s) for s in tracer.spans
            if s.cat not in ("sweep",)  # the sweep span's wall args differ
        )

    def test_span_trees_identical_across_job_counts(self):
        trees = []
        for jobs in (1, 2):
            tr = Tracer()
            with tracing(tr):
                run_sweep(_chaos_spec(), jobs=jobs)
            trees.append(self._span_tree(tr))
        assert trees[0] == trees[1]

    def test_ledger_identical_across_job_counts(self):
        dumps = []
        ledgers = []
        for jobs in (1, 2):
            book = LoadLedger(per_proc=False)
            with ledger_scope(book):
                result = run_sweep(_chaos_spec(), jobs=jobs)
            dumps.append(book.to_dict(per_proc=False))
            ledgers.append(result.ledger)
        assert dumps[0] == dumps[1]  # bit-identical, not approximately
        assert ledgers[0] == ledgers[1] and ledgers[0] is not None

    def test_telemetry_schema_and_seed(self):
        result = run_sweep(_chaos_spec(trials=2), jobs=1)
        tel = result.telemetry()
        assert tel["schema_version"] == TELEMETRY_SCHEMA_VERSION == 6
        assert tel["seed"] == 7
        assert tel["jobs"] == 1

    def test_telemetry_json_roundtrip(self, tmp_path):
        result = run_sweep(_chaos_spec(trials=2), jobs=1)
        path = tmp_path / "sweep.json"
        result.to_json(str(path))
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == 6 and doc["seed"] == 7
        assert len(doc["trial_columns"]["wall_s"]) == 2
        # no ledger installed -> the v5 block is present but null
        assert doc["ledger"] is None

    def test_telemetry_carries_ledger_block(self):
        book = LoadLedger(per_proc=False)
        with ledger_scope(book):
            result = run_sweep(_chaos_spec(trials=2), jobs=1)
        tel = result.telemetry()
        assert tel["ledger"]["supersteps"] == len(book)
        assert tel["ledger"]["charge"] == book.total_charge()


def _matched(p=64, m=8, L=4.0):
    return MachineParams.matched_pair(p=p, m=m, L=L)


def _five_models(p=64, m=8, L=4.0):
    """Every priced machine model, on its half of the matched pair."""
    local, global_ = _matched(p, m, L)
    return {
        "BSP(g)": BSPg(local),
        "BSP(m)": BSPm(global_),
        "QSM(g)": QSMg(local),
        "QSM(m)": QSMm(global_),
        "BSP(m) self-sched": SelfSchedulingBSPm(global_),
    }


def _table1_programs(p=64):
    return {
        "one-to-all": lambda mach: one_to_all(mach),
        "broadcast": lambda mach: broadcast(mach, 1),
        "summation": lambda mach: summation(mach, [1.0] * p)[0],
    }


class TestLoadLedger:
    def test_hook_default_off(self):
        assert active_ledger() is None

    def test_ledger_scope_restores_previous(self):
        with ledger_scope() as book:
            assert active_ledger() is book
        assert active_ledger() is None

    def test_disabled_model_time_bit_identical(self):
        plain = _routed_run().time
        with ledger_scope():
            booked = _routed_run().time
        assert booked == plain

    def test_charges_reconcile_on_every_model_and_program(self):
        # the ISSUE acceptance criterion: sum of per-superstep charges ==
        # the model's priced time, for all five models, on every Table-1
        # program — the ledger IS the CostBreakdown, re-read at the barrier
        for prog_name, run in _table1_programs().items():
            for model_name, machine in _five_models().items():
                book = LoadLedger()
                with ledger_scope(book):
                    res = run(machine)
                assert book.total_charge() == res.time, (
                    f"{prog_name} on {model_name}: ledger "
                    f"{book.total_charge()!r} != model {res.time!r}"
                )
                # the charge is the max-of-components rule, row by row
                cols = book.columns
                for i in range(len(book)):
                    assert cols["charge"][i] == max(
                        cols["work"][i], cols["local_band"][i],
                        cols["global_band"][i], cols["latency"][i],
                        cols["contention"][i],
                    )

    def test_routing_charges_reconcile(self):
        book = LoadLedger()
        with ledger_scope(book):
            res = _routed_run()
        assert book.total_charge() == res.time
        assert len(book) == len(res.records)

    def test_binding_matches_breakdown_dominant(self):
        book = LoadLedger()
        with ledger_scope(book):
            res = one_to_all(QSMm(_matched()[1]))
        for i, rec in enumerate(res.records):
            assert book.columns["binding"][i] == binding_of(rec.breakdown)

    def test_binding_disagrees_between_twin_models(self):
        # the paper's point: on a balanced h-relation the globally-limited
        # twin saturates f(m) while the locally-limited twin prices the
        # same barrier at g·h — the ledger must expose that disagreement
        from repro.workloads import balanced_h_relation

        local, global_ = _matched(p=32, m=4, L=1.0)
        rel = balanced_h_relation(32, 8, seed=0)
        sched = unbalanced_send(rel, 4, 0.2, seed=1)
        verdicts = {}
        for name, machine in (("local", BSPg(local)), ("global", BSPm(global_))):
            book = LoadLedger()
            with ledger_scope(book):
                execute_schedule(machine, sched)
            verdicts[name] = list(book.columns["binding"])
        assert verdicts["local"] != verdicts["global"]
        assert "global" in verdicts["global"]
        assert all(v != "global" for v in verdicts["local"])

    def test_run_result_exposes_a_view(self):
        with ledger_scope() as book:
            a = one_to_all(QSMm(_matched()[1]))
            b = one_to_all(QSMm(_matched()[1]))
        assert a.ledger is not None and b.ledger is not None
        assert len(a.ledger) + len(b.ledger) == len(book)
        assert a.ledger.total_charge() == a.time
        assert b.ledger.total_charge() == b.time
        # the second view starts where the first stopped
        assert b.ledger.start == a.ledger.stop

    def test_per_proc_detail_recorded_for_small_p(self):
        book = LoadLedger()
        with ledger_scope(book):
            broadcast(_machine(p=16, m=4, L=1.0), 1)
        sent = book.proc_columns["sent_by_proc"]
        assert sent and all(row is not None for row in sent)
        for i, row in enumerate(sent):
            assert sum(row) == book.columns["sent"][i]

    def test_dump_roundtrip_and_merge(self):
        book = LoadLedger()
        with ledger_scope(book):
            one_to_all(QSMm(_matched()[1]))
        dump = json.loads(json.dumps(book.to_dict(), default=float))
        other = LoadLedger()
        other.merge_dump(dump)
        assert other.to_dict()["columns"] == book.to_dict()["columns"]
        assert other.summary() == book.summary()

    def test_ledger_table_renders(self):
        book = LoadLedger()
        with ledger_scope(book):
            one_to_all(QSMm(_matched()[1]))
        text = ledger_table(book)
        assert "binding" in text and "which restriction bound" in text
        # and straight from a JSON dump
        assert "binding" in ledger_table(book.to_dict())

    def test_chrome_trace_counter_track(self, tmp_path):
        tr = Tracer()
        book = LoadLedger()
        with tracing(tr), ledger_scope(book):
            _routed_run()
        doc = chrome_trace(tr, ledger=book)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert counters, "expected ledger counter events"
        names = {e["name"] for e in counters}
        assert names == {"ledger load", "ledger utilization"}
        loads = [e for e in counters if e["name"] == "ledger load"]
        assert max(e["args"]["h"] for e in loads) == max(book.columns["h"])
        thread_meta = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["args"]["name"] == "bandwidth ledger"
        ]
        assert len(thread_meta) == 1
        # without a ledger the trace has no counter track
        assert not [
            e for e in chrome_trace(tr)["traceEvents"] if e["ph"] == "C"
        ]


class TestPrometheusExposition:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests.ok").inc(3)
        reg.gauge("queue.depth").set(2)
        h = reg.histogram("round.window", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        return reg

    def test_shape_and_naming(self):
        text = prometheus_exposition(self._registry())
        lines = text.splitlines()
        assert text.endswith("\n")
        assert "serve_requests_ok_total 3" in lines
        assert "queue_depth 2" in lines
        assert "# TYPE serve_requests_ok_total counter" in lines
        assert "# TYPE round_window histogram" in lines

    def test_histogram_buckets_are_cumulative(self):
        text = prometheus_exposition(self._registry())
        assert 'round_window_bucket{le="1"} 1' in text
        assert 'round_window_bucket{le="10"} 2' in text
        assert 'round_window_bucket{le="+Inf"} 3' in text
        assert "round_window_sum 55.5" in text
        assert "round_window_count 3" in text

    def test_accepts_a_dump_dict(self):
        reg = self._registry()
        assert prometheus_exposition(reg.to_dict()) == prometheus_exposition(reg)

    def test_every_sample_line_parses(self):
        for line in prometheus_exposition(self._registry()).splitlines():
            if line and not line.startswith("#"):
                _name, _, value = line.rpartition(" ")
                float(value)


class TestTopRendering:
    def test_daemon_frame(self):
        from repro.obs.top import render_frame

        lines = render_frame({
            "source": "daemon http://x:1", "status": "serving",
            "queue_depth": 3, "in_flight": 1, "outstanding": 4,
            "budget_m": 64,
            "counters": {"serve.requests.ok": 7, "serve.shed.queue_full": 2},
            "rounds": [{"seq": 1, "window": 32, "overloaded_slots": 0,
                        "requests": 4, "queue_depth": 3, "cache_hits": 1}],
        })
        text = "\n".join(lines)
        assert "serving" in text and "queue    3" in text
        assert "vs m=64" in text and "ok 7" in text
        assert "shed: queue_full=2" in text

    def test_sweep_frame_with_ledger(self):
        from repro.obs.top import render_frame

        lines = render_frame({
            "source": "file s.json", "status": "chaos",
            "trials": 8, "jobs": 2, "elapsed_s": 0.5, "utilization": 0.9,
            "counters": {"cache.hits": 1},
            "workers": {"10": 0.2, "11": 0.3}, "steals": 1,
            "ledger": {"supersteps": 6, "charge": 100.0, "max_h": 9.0,
                       "charge_by_binding": {"local": 75.0, "global": 25.0},
                       "util_local_mean": 0.8, "util_global_mean": 0.5},
        })
        text = "\n".join(lines)
        assert "utilization 0.90" in text
        assert "steals=1" in text and "ledger: 6 supersteps" in text
        assert "75.0%" in text and "25.0%" in text

    def test_error_frame(self):
        from repro.obs.top import render_frame

        lines = render_frame({"source": "daemon x", "status": "unreachable",
                              "error": "ConnectionRefusedError: nope"})
        assert any("ConnectionRefusedError" in line for line in lines)

    def test_file_source_reads_telemetry(self, tmp_path):
        from repro.obs.top import FileSource

        result = run_sweep(_chaos_spec(trials=2), jobs=1)
        path = tmp_path / "tel.json"
        result.to_json(str(path))
        frame = FileSource(str(path)).frame()
        assert frame["status"] == "chaos"
        assert frame["trials"] == 2
        lines_missing = FileSource(str(tmp_path / "nope.json")).frame()
        assert lines_missing["status"] == "unreadable"


class TestCompare:
    def test_direction_classification(self):
        assert classify("routing.model_time") == "exact"
        assert classify("routing.msgs_per_s") == "higher"
        assert classify("telemetry.elapsed_s") == "lower"
        assert classify("trial_wall_s.mean") == "lower"
        # "_s" mid-word must NOT read as a seconds suffix
        assert classify("identical_to_serial") == "info"
        assert classify("routing.messages") == "info"

    def test_identical_records_pass(self):
        base = {"routing": {"model_time": 750.5, "msgs_per_s": 2e6}}
        cmp_ = compare_bench(base, json.loads(json.dumps(base)))
        assert cmp_.ok and not cmp_.regressions

    def test_throughput_regression_is_gated(self):
        base = {"msgs_per_s": 100.0}
        assert compare_bench(base, {"msgs_per_s": 96.0}).ok  # within 5%
        bad = compare_bench(base, {"msgs_per_s": 90.0})
        assert not bad.ok and bad.regressions[0].key == "msgs_per_s"

    def test_wall_clock_regression_is_gated(self):
        base = {"elapsed_s": 1.0}
        assert compare_bench(base, {"elapsed_s": 1.04}).ok
        assert not compare_bench(base, {"elapsed_s": 1.2}).ok

    def test_model_time_is_exact(self):
        base = {"model_time": 750.0}
        assert compare_bench(base, {"model_time": 750.0}).ok
        assert not compare_bench(base, {"model_time": 750.0001}).ok

    def test_missing_gated_key_is_a_regression(self):
        cmp_ = compare_bench({"msgs_per_s": 1.0}, {})
        assert not cmp_.ok and cmp_.regressions[0].status == "missing"

    def test_new_and_info_keys_never_gate(self):
        cmp_ = compare_bench({"p": 64}, {"p": 128, "extra": 1.0})
        assert cmp_.ok
        statuses = {r.key: r.status for r in cmp_.rows}
        assert statuses["p"] == "drift" and statuses["extra"] == "new"

    def test_compare_files_and_render(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"msgs_per_s": 100.0}))
        b.write_text(json.dumps({"msgs_per_s": 10.0}))
        cmp_ = compare_files(str(a), str(b), tolerance=0.05)
        assert not cmp_.ok
        assert "regression" in cmp_.render()


class TestManifest:
    def test_build_manifest_fields(self):
        manifest = build_manifest(
            command="chaos",
            params={"p": 64, "plan": FaultPlan()},
            seed="SeedSequence(entropy=7)",
            jobs=2,
            penalty="exponential",
            trace_path="t.json",
        )
        assert manifest["schema_version"] == 1
        assert manifest["command"] == "chaos"
        assert manifest["seed"] == "SeedSequence(entropy=7)"
        assert manifest["penalty_family"] == "exponential"
        assert set(manifest["cache"]) == {"hits", "misses", "hit_rate"}
        assert manifest["params"]["p"] == 64
        assert isinstance(manifest["params"]["plan"], str)  # repr-coerced
        json.dumps(manifest)  # JSON-serializable end to end

    def test_manifest_path_convention(self):
        assert manifest_path("out/trace.json") == "out/trace.json.manifest.json"


class TestCLI:
    def test_profile_top_rejects_nonpositive(self, capsys):
        from repro.harness import main

        for bad in ("0", "-3"):
            with pytest.raises(SystemExit) as exc:
                main(["profile", "route", "--top", bad])
            assert exc.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_chaos_writes_trace_metrics_and_manifest(self, tmp_path, capsys):
        from repro.harness import main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        code = main(
            ["chaos", "uniform", "--p", "16", "--n", "200", "--m", "8",
             "--seed", "7", "--drop-rate", "0.1",
             "--trace", str(trace), "--metrics", str(metrics)]
        )
        assert code == 0
        doc = json.loads(trace.read_text())
        assert any(e.get("cat") == "superstep" for e in doc["traceEvents"])
        assert any(e.get("cat") == "transport" for e in doc["traceEvents"])
        mdoc = json.loads(metrics.read_text())
        assert mdoc["counters"]["transport.runs"] == 1.0
        manifest = json.loads((tmp_path / "trace.json.manifest.json").read_text())
        assert manifest["command"] == "chaos" and manifest["seed"] == 7
        assert "cost attribution" in capsys.readouterr().out
        # the CLI scope must not leak an installed tracer into the process
        assert active_tracer() is None and active_metrics() is None

    def test_compare_cli_exit_codes(self, tmp_path, capsys):
        from repro.harness import main

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"routing": {"msgs_per_s": 100.0}}))
        b.write_text(json.dumps({"routing": {"msgs_per_s": 99.0}}))
        assert main(["compare", str(a), str(b)]) == 0
        b.write_text(json.dumps({"routing": {"msgs_per_s": 10.0}}))
        assert main(["compare", str(a), str(b)]) == 1
        assert "regression" in capsys.readouterr().out

    def test_compare_json_output(self, tmp_path, capsys):
        from repro.harness import main

        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps({"routing": {"msgs_per_s": 100.0}}))
        b.write_text(json.dumps({"routing": {"msgs_per_s": 10.0}}))
        # exit codes unchanged; stdout is strict JSON
        assert main(["compare", str(a), str(b), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False and doc["regressions"] == 1
        assert doc["rows"][0]["status"] == "regression"
        out_path = tmp_path / "cmp.json"
        assert main(["compare", str(a), str(b), "--json", str(out_path)]) == 1
        assert json.loads(out_path.read_text())["ok"] is False

    def test_ledger_cli_runs_and_roundtrips(self, tmp_path, capsys):
        from repro.harness import main

        dump = tmp_path / "led.json"
        code = main(["ledger", "one-to-all", "--model", "qsm-m",
                     "--p", "64", "--m", "8", "--json", str(dump)])
        assert code == 0
        out = capsys.readouterr().out
        assert "binding" in out and "total charge" in out
        doc = json.loads(dump.read_text())
        assert doc["summary"]["supersteps"] == len(doc["columns"]["charge"])
        # --from re-renders the archived dump without running anything
        assert main(["ledger", "--from", str(dump)]) == 0
        assert "which restriction bound" in capsys.readouterr().out
        # no program and no --from is an error
        assert main(["ledger"]) == 2

    def test_ledger_observability_flag(self, tmp_path, capsys):
        from repro.harness import main

        led = tmp_path / "led.json"
        code = main(["measure", "--p", "16", "--m", "4", "--ledger", str(led)])
        assert code == 0
        doc = json.loads(led.read_text())
        assert doc["columns"]["charge"]
        manifest = json.loads((tmp_path / "led.json.manifest.json").read_text())
        assert manifest["ledger_path"] == str(led)
        assert active_ledger() is None  # scope did not leak
        assert "binding:" in capsys.readouterr().out

    def test_top_once_renders_telemetry_file(self, tmp_path, capsys):
        from repro.harness import main

        result = run_sweep(_chaos_spec(trials=2), jobs=1)
        path = tmp_path / "tel.json"
        result.to_json(str(path))
        assert main(["top", "--telemetry", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "trials 2" in out
        # exactly one source is required
        assert main(["top", "--once"]) == 2
