"""Tests for the pluggable sweep executor backends: the registry, the
serial/pool-steal/mpi parity matrix, work-stealing behavior under a
straggler, and warm-started memo caches."""

import time

import pytest

from repro.experiments import run_experiment
from repro.sweep import (
    BACKENDS,
    BackendUnavailableError,
    ExecutorBackend,
    SweepSpec,
    available_backends,
    cached_offline_report,
    clear_cache,
    get_backend,
    mpi_available,
    resolve_backend,
    run_sweep,
)
from repro.workloads import uniform_random_relation

from tests.test_sweep import SMALL_KWARGS


# ---------------------------------------------------------------------------
# module-level trial functions (pool workers pickle them by reference)

def _straggle(x, seed):
    if x == 0:
        time.sleep(0.25)  # one slow trial; the pool must not wait on it
    return x * x


def _warm_lookup(m, seed):
    rel = uniform_random_relation(8, 200, seed=123)  # fixed: every trial shares it
    report = cached_offline_report(rel, m)
    return float(report.completion_time)


BACKEND_MATRIX = [
    "serial",
    "pool-steal",
    pytest.param(
        "mpi",
        marks=pytest.mark.skipif(
            not mpi_available(), reason="mpi4py not installed"
        ),
    ),
]


class TestRegistry:
    def test_registered_names(self):
        assert sorted(BACKENDS) == ["mpi", "pool-steal", "serial"]

    def test_available_backends_gate_mpi(self):
        avail = available_backends()
        assert "serial" in avail and "pool-steal" in avail
        assert ("mpi" in avail) == mpi_available()

    def test_instances_satisfy_protocol(self):
        for name in available_backends():
            assert isinstance(get_backend(name), ExecutorBackend)

    def test_unknown_backend_lists_registry(self):
        with pytest.raises(ValueError, match="pool-steal"):
            get_backend("bogus")

    @pytest.mark.skipif(mpi_available(), reason="mpi4py is installed here")
    def test_mpi_without_mpi4py_is_unavailable(self):
        with pytest.raises(BackendUnavailableError, match="repro\\[mpi\\]"):
            get_backend("mpi")

    def test_resolution_defaults(self):
        # jobs=1 and tiny grids stay serial; real parallel work gets the pool
        assert resolve_backend(None, jobs=1, n_tasks=10).name == "serial"
        assert resolve_backend("auto", jobs=4, n_tasks=1).name == "serial"
        assert resolve_backend(None, jobs=4, n_tasks=10).name == "pool-steal"
        # an explicit choice is always honored
        assert resolve_backend("serial", jobs=4, n_tasks=10).name == "serial"
        assert resolve_backend("pool-steal", jobs=1, n_tasks=1).name == "pool-steal"


class TestBackendParityMatrix:
    """The headline contract: every backend, every registered experiment,
    bit-identical to serial at the same seed."""

    @pytest.mark.parametrize("name", sorted(SMALL_KWARGS))
    @pytest.mark.parametrize("backend", BACKEND_MATRIX)
    def test_backend_matches_serial(self, name, backend):
        kwargs = SMALL_KWARGS[name]
        serial = run_experiment(name, seed=42, jobs=1, **kwargs)
        other = run_experiment(name, seed=42, jobs=2, backend=backend, **kwargs)
        if other is None:
            # mpi worker rank under mpirun: this rank served the sweep's
            # tasks; rank 0 holds the result and makes the assertion
            assert backend == "mpi"
            return
        assert other == serial


class TestWorkStealing:
    def test_straggler_delays_only_itself(self):
        """With one slow trial, the other worker drains the rest of the
        queue — visible as an uneven per-worker split — and results stay
        in task order, identical to serial."""
        spec = SweepSpec(
            name="straggle", fn=_straggle,
            grid=[{"x": x} for x in range(8)], seed=1,
        )
        serial = run_sweep(spec, jobs=1, backend="serial")
        pooled = run_sweep(spec, jobs=2, backend="pool-steal")
        assert pooled.results == serial.results == [x * x for x in range(8)]
        counts = sorted(pooled.backend_stats["tasks_per_worker"].values())
        assert sum(counts) == 8
        # the worker stuck on x=0 cannot also have drained the queue
        assert counts[0] < counts[-1]
        assert pooled.backend_stats["steals"] >= 1
        assert pooled.telemetry()["backend"]["steals"] >= 1

    def test_elapsed_not_serialized_behind_straggler(self):
        """The 0.25s straggler bounds the sweep: everything else overlaps
        it instead of queueing behind it in the same chunk."""
        spec = SweepSpec(
            name="straggle", fn=_straggle,
            grid=[{"x": x} for x in range(8)], seed=1,
        )
        pooled = run_sweep(spec, jobs=2, backend="pool-steal")
        # generous bound: far below 2 * 0.25s, which a chunked schedule
        # putting two stragglers in one chunk would exceed
        assert pooled.elapsed < 2.0


class TestWarmStart:
    def test_pool_workers_inherit_warm_cache(self):
        """After a warm-up, fork-started pool workers answer every memo
        lookup from the inherited cache — the per-trial hit telemetry is
        exactly the serial run's."""
        clear_cache()
        rel = uniform_random_relation(8, 200, seed=123)
        cached_offline_report(rel, 16)  # warm the parent cache
        spec = SweepSpec(
            name="warm", fn=_warm_lookup, grid=[{"m": 16}], trials=6, seed=0
        )
        serial = run_sweep(spec, jobs=1, backend="serial")
        pooled = run_sweep(spec, jobs=2, backend="pool-steal")
        assert pooled.results == serial.results
        s_cache = serial.telemetry()["cache"]
        p_cache = pooled.telemetry()["cache"]
        assert s_cache == p_cache
        assert p_cache["hit_rate"] == 1.0
        assert p_cache["misses"] == 0
        # per-trial accounting matches too, not just the aggregate
        assert [r.cache_hits for r in pooled.records] == [
            r.cache_hits for r in serial.records
        ]

    def test_snapshot_roundtrip(self):
        """The spawn-path warm start: snapshot + install reproduces the
        hit behavior without fork inheritance."""
        from repro.sweep import cache

        clear_cache()
        rel = uniform_random_relation(8, 200, seed=123)
        cached_offline_report(rel, 16)
        snap = cache.snapshot_entries()
        assert snap["schedules"] and snap["reports"]
        clear_cache()
        cache.install_entries(snap)
        before = cache.cache_stats()
        cached_offline_report(rel, 16)
        after = cache.cache_stats()
        assert after.hits == before.hits + 1  # answered by the report layer
        assert after.misses == before.misses
