"""Pricing tests for all five machine models, pinned against hand-computed
superstep charges from the Section 2 formulas."""

import numpy as np
import pytest

from repro import (
    BSPg,
    BSPm,
    LINEAR,
    MachineParams,
    ModelViolation,
    QSMg,
    QSMm,
    SelfSchedulingBSPm,
)
from repro.models.pram import PRAM, ConcurrencyRule
from repro.models.pram_m import PRAMm


def one_to_all_prog(ctx):
    if ctx.pid == 0:
        for d in range(1, ctx.nprocs):
            ctx.send(d, d, slot=d - 1)
    yield


class TestBSPg:
    def test_superstep_cost_g_h(self):
        mach = BSPg(MachineParams(p=8, g=4.0, L=1.0))
        res = mach.run(one_to_all_prog)
        # h = 7, cost = max(0, 4*7, 1) = 28
        assert res.time == 28.0

    def test_latency_floor(self):
        mach = BSPg(MachineParams(p=4, g=2.0, L=50.0))
        def prog(ctx):
            if ctx.pid == 0:
                ctx.send(1, "x")
            yield
        assert mach.run(prog).time == 50.0

    def test_work_dominates(self):
        mach = BSPg(MachineParams(p=4, g=2.0, L=1.0))
        def prog(ctx):
            ctx.work(100 if ctx.pid == 2 else 1)
            yield
        assert mach.run(prog).time == 100.0

    def test_receive_side_counts_in_h(self):
        mach = BSPg(MachineParams(p=4, g=3.0, L=1.0))
        def prog(ctx):
            if ctx.pid != 0:
                ctx.send(0, "x")  # all-to-one: r_0 = 3
            yield
        assert mach.run(prog).time == 9.0


class TestBSPm:
    def test_one_to_all_costs_p_minus_1(self):
        mach = BSPm(MachineParams(p=8, m=2, L=1.0))
        res = mach.run(one_to_all_prog)
        assert res.time == 7.0  # span 7, h 7; bandwidth never binds

    def test_overload_exponential(self):
        p, m = 16, 2
        mach = BSPm(MachineParams(p=p, m=m, L=1.0))
        def prog(ctx):
            ctx.send((ctx.pid + 1) % ctx.nprocs, "x", slot=0)
            yield
        res = mach.run(prog)
        # one slot with 16 flits: charge e^{16/2 - 1} = e^7
        assert res.records[0].stats["c_m"] == pytest.approx(np.exp(7))

    def test_overload_linear_penalty(self):
        mach = BSPm(MachineParams(p=16, m=2, L=1.0), penalty=LINEAR)
        def prog(ctx):
            ctx.send((ctx.pid + 1) % ctx.nprocs, "x", slot=0)
            yield
        res = mach.run(prog)
        assert res.records[0].stats["c_m"] == pytest.approx(8.0)

    def test_idle_slots_cost_unit_time(self):
        """A lone flit at slot 99 keeps the superstep open for 100 slots."""
        mach = BSPm(MachineParams(p=4, m=2, L=1.0))
        def prog(ctx):
            if ctx.pid == 0:
                ctx.send(1, "x", slot=99)
            yield
        res = mach.run(prog)
        assert res.records[0].stats["span"] == 100.0
        assert res.time == 100.0
        # the literal paper charge only counts the nonempty slot
        assert res.records[0].stats["c_m_paper"] == 1.0

    def test_requires_m(self):
        with pytest.raises(ValueError):
            BSPm(MachineParams(p=4))

    def test_nonconsecutive_flits(self):
        mach = BSPm(MachineParams(p=4, m=4, L=1.0))
        def prog(ctx):
            if ctx.pid == 0:
                ctx.send(1, "x", size=3, slot=0, consecutive=False)
            yield
        with pytest.raises(ModelViolation):
            # 3 flits in the same slot from one processor
            mach.run(prog)


class TestSelfScheduling:
    def test_charges_n_over_m(self):
        mach = SelfSchedulingBSPm(MachineParams(p=8, m=2, L=1.0))
        def prog(ctx):
            ctx.send((ctx.pid + 1) % ctx.nprocs, "x", slot=0)  # slots ignored
            yield
        res = mach.run(prog)
        assert res.time == 4.0  # n/m = 8/2; h = 1; L = 1

    def test_h_floor(self):
        mach = SelfSchedulingBSPm(MachineParams(p=8, m=8, L=1.0))
        res = mach.run(one_to_all_prog)
        assert res.time == 7.0  # h = 7 > n/m = 7/8


class TestQSMg:
    def test_phase_floor_is_g(self):
        mach = QSMg(MachineParams(p=4, g=5.0))
        def prog(ctx):
            ctx.write(("x", ctx.pid), 1)
            yield
        assert mach.run(prog).time == 5.0  # h = max(1, 1), cost g*1

    def test_contention_term(self):
        mach = QSMg(MachineParams(p=16, g=2.0))
        def prog(ctx):
            ctx.write("hot", ctx.pid)
            yield
        assert mach.run(prog).time == 16.0  # kappa = 16 > g*1

    def test_gh_term(self):
        mach = QSMg(MachineParams(p=4, g=3.0))
        def prog(ctx):
            if ctx.pid == 0:
                for j in range(5):
                    ctx.write(("c", j), j)
            yield
        assert mach.run(prog).time == 15.0  # g * h = 3 * 5


class TestQSMm:
    def test_staggered_writes_unit_charge(self):
        mach = QSMm(MachineParams(p=8, m=4))
        def prog(ctx):
            ctx.write(("x", ctx.pid), 1, slot=ctx.stagger_slot())
            yield
        res = mach.run(prog)
        # 8 writes over 2 slots of 4: c_m = 2
        assert res.records[0].stats["c_m"] == 2.0

    def test_two_requests_same_slot_violate(self):
        mach = QSMm(MachineParams(p=2, m=2))
        def prog(ctx):
            ctx.write(("a", ctx.pid), 1, slot=0)
            ctx.write(("b", ctx.pid), 1, slot=0)
            yield
        with pytest.raises(ModelViolation):
            mach.run(prog)

    def test_requires_m(self):
        with pytest.raises(ValueError):
            QSMm(MachineParams(p=4))


class TestPRAM:
    def test_erew_violation(self):
        mach = PRAM(MachineParams(p=4), rule=ConcurrencyRule.EREW)
        def prog(ctx):
            ctx.read("same")
            yield
        with pytest.raises(ModelViolation, match="EREW"):
            mach.run(prog)

    def test_erew_ok_distinct(self):
        mach = PRAM(MachineParams(p=4), rule=ConcurrencyRule.EREW)
        def prog(ctx):
            ctx.write(ctx.pid, 1)
            yield
        assert mach.run(prog).time == 1.0

    def test_erew_scalar_write_write_violation(self):
        # two processors ctx.write() the same cell in one step
        mach = PRAM(MachineParams(p=4), rule=ConcurrencyRule.EREW)
        def prog(ctx):
            if ctx.pid < 2:
                ctx.write("hot", ctx.pid)
            yield
        with pytest.raises(ModelViolation, match="EREW.*contention 2"):
            mach.run(prog)

    def test_erew_scalar_read_write_same_cell_allowed(self):
        # mixed access is read-then-write step semantics: one reader plus
        # one writer on a cell is contention 1 on each side, not a conflict
        mach = PRAM(MachineParams(p=4), rule=ConcurrencyRule.EREW)
        def prog(ctx):
            if ctx.pid == 0:
                ctx.read("cell")
            elif ctx.pid == 1:
                ctx.write("cell", 7)
            yield
        assert mach.run(prog).time == 1.0

    def test_erew_violation_is_not_a_program_error(self):
        from repro import ProgramError
        mach = PRAM(MachineParams(p=2), rule=ConcurrencyRule.EREW)
        def prog(ctx):
            ctx.read(0)
            yield
        with pytest.raises(ModelViolation) as excinfo:
            mach.run(prog)
        assert not isinstance(excinfo.value, ProgramError)

    def test_qrqw_charges_queue(self):
        mach = PRAM(MachineParams(p=8), rule=ConcurrencyRule.QRQW)
        def prog(ctx):
            ctx.read("hot")
            yield
        assert mach.run(prog).time == 8.0

    def test_crcw_unit_step(self):
        mach = PRAM(MachineParams(p=8), rule=ConcurrencyRule.CRCW)
        def prog(ctx):
            ctx.write("hot", ctx.pid)
            yield
        assert mach.run(prog).time == 1.0

    def test_rule_from_string(self):
        mach = PRAM(MachineParams(p=2), rule="qrqw")
        assert mach.rule is ConcurrencyRule.QRQW


class TestPRAMm:
    def test_address_range_enforced(self):
        mach = PRAMm(MachineParams(p=4, m=2))
        def prog(ctx, rom):
            ctx.write(5, 1)  # only cells 0..1 exist
            yield
        with pytest.raises(ModelViolation, match="shared address"):
            mach.run(prog)

    def test_non_int_address_rejected(self):
        mach = PRAMm(MachineParams(p=4, m=2))
        def prog(ctx, rom):
            ctx.write("name", 1)
            yield
        with pytest.raises(ModelViolation):
            mach.run(prog)

    def test_rom_read_is_free(self):
        mach = PRAMm(MachineParams(p=4, m=2))
        def prog(ctx, rom):
            # touching the whole ROM costs nothing
            total = sum(rom)
            ctx.write(0, total)
            yield
            h = ctx.read(0)
            yield
            return h.value
        res = mach.run(prog, rom=[1, 2, 3, 4])
        assert res.results == [10] * 4
        assert res.time == 2.0
