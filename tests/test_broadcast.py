"""Tests for broadcasting on all four models + the non-receipt algorithm."""

import math

import pytest

from repro import BSPg, BSPm, MachineParams, QSMg, QSMm
from repro.algorithms import broadcast, broadcast_bit_nonreceipt, default_branching
from repro.theory.bounds import (
    broadcast_bsp_g,
    broadcast_bsp_g_lower,
    broadcast_bsp_m,
    broadcast_nonreceipt_upper,
    broadcast_qsm_g,
    broadcast_qsm_m,
)


class TestCorrectness:
    def test_all_models(self, all_machines):
        for name, mach in all_machines.items():
            mach.shared_memory.clear()
            res = broadcast(mach, value="payload")
            assert all(v == "payload" for v in res.results), name

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 17, 100])
    def test_odd_sizes_bsp(self, p):
        mach = BSPm(MachineParams(p=p, m=max(1, p // 4), L=2))
        res = broadcast(mach, value=7)
        assert res.results == [7] * p

    @pytest.mark.parametrize("p", [1, 2, 3, 5, 17, 100])
    def test_odd_sizes_qsm(self, p):
        mach = QSMm(MachineParams(p=p, m=max(1, p // 4)))
        res = broadcast(mach, value=7)
        assert res.results == [7] * p

    def test_custom_branching(self):
        mach = BSPg(MachineParams(p=64, g=2.0, L=8))
        res = broadcast(mach, value=1, branching=4)
        assert res.results == [1] * 64


class TestCosts:
    def test_bsp_m_beats_bsp_g(self, matched_medium):
        local, global_ = matched_medium
        t_local = broadcast(BSPg(local), 1).time
        t_global = broadcast(BSPm(global_), 1).time
        assert t_global < t_local

    def test_qsm_m_beats_qsm_g(self, matched_medium):
        local, global_ = matched_medium
        t_local = broadcast(QSMg(local), 1).time
        t_global = broadcast(QSMm(global_), 1).time
        assert t_global < t_local

    def test_measured_within_constant_of_bound(self, matched_medium):
        local, global_ = matched_medium
        p, m, L, g = local.p, global_.m, local.L, local.g
        cases = [
            (BSPg(local), broadcast_bsp_g(p, g, L)),
            (BSPm(global_), broadcast_bsp_m(p, m, L)),
            (QSMg(local), broadcast_qsm_g(p, g)),
            (QSMm(global_), broadcast_qsm_m(p, m)),
        ]
        for mach, bound in cases:
            t = broadcast(mach, 1).time
            assert t <= 6 * bound + 1, type(mach).__name__
            assert t >= 0.2 * bound, type(mach).__name__

    def test_no_overload_on_m_machines(self, matched_medium):
        _, global_ = matched_medium
        res = broadcast(BSPm(global_), 1)
        assert res.stat_max("overloaded_slots") == 0

    def test_default_branching_values(self, matched_medium):
        local, global_ = matched_medium
        assert default_branching(BSPg(local)) == max(2, int(local.L / local.g) + 1)
        assert default_branching(BSPm(global_)) == max(2, int(global_.L))
        assert default_branching(QSMg(local)) == max(2, int(local.g) + 1)
        assert default_branching(QSMm(global_)) == 2


class TestNonReceipt:
    @pytest.mark.parametrize("bit", [0, 1])
    @pytest.mark.parametrize("p", [2, 3, 9, 26, 27, 28, 100])
    def test_correct(self, bit, p):
        mach = BSPg(MachineParams(p=p, g=4.0, L=1.0))
        res = broadcast_bit_nonreceipt(mach, bit)
        assert res.results == [bit] * p

    def test_superstep_count_log3(self):
        p = 81
        mach = BSPg(MachineParams(p=p, g=4.0, L=1.0))
        res = broadcast_bit_nonreceipt(mach, 1)
        assert res.supersteps == math.ceil(math.log(p, 3))

    def test_time_matches_upper_bound(self):
        """g*ceil(log3 p) when L <= g — the Section 4.2 claim."""
        p, g = 243, 8.0
        mach = BSPg(MachineParams(p=p, g=g, L=1.0))
        res = broadcast_bit_nonreceipt(mach, 0)
        assert res.time == broadcast_nonreceipt_upper(p, g)

    def test_beats_theorem_4_1_naive_reading(self):
        """The non-receipt algorithm with L = g = 8 runs in g·log3(p),
        while a receipt-only tree would need ~log2-based rounds — the
        lower bound of Theorem 4.1 is still respected."""
        p, g, L = 729, 8.0, 8.0
        mach = BSPg(MachineParams(p=p, g=g, L=L))
        t = broadcast_bit_nonreceipt(mach, 1).time
        assert t >= broadcast_bsp_g_lower(p, g, L)

    def test_rejects_bad_bit(self):
        mach = BSPg(MachineParams(p=4, g=2.0))
        with pytest.raises(ValueError):
            broadcast_bit_nonreceipt(mach, 2)

    def test_rejects_qsm(self):
        mach = QSMg(MachineParams(p=4, g=2.0))
        with pytest.raises(ValueError, match="message-passing"):
            broadcast_bit_nonreceipt(mach, 0)


class TestTheorem41:
    def test_lower_bound_below_tree_upper(self):
        """Sanity: the exact Theorem 4.1 lower bound never exceeds the tree
        algorithm's measured time, across a parameter sweep."""
        for p in (16, 64, 256):
            for L in (1.0, 4.0, 16.0):
                for g in (1.0, 2.0, 8.0):
                    if g > L:
                        continue
                    mach = BSPg(MachineParams(p=p, g=g, L=L))
                    t = broadcast(mach, 1).time
                    assert t >= broadcast_bsp_g_lower(p, g, L) * 0.49, (p, L, g)
