"""The O(n²)→O(n lg n) dynamic-layer rewrite must be invisible.

``run_dynamic``'s backlog sampling and ``check_compliance``'s sliding-window
scan were linearized (cumsum + ``np.searchsorted``); these tests pin the
outputs byte-for-byte against frozen copies of the original quadratic
implementations, on seeded traces from every adversary family and on
hand-built traces that trigger each violation branch.
"""

from __future__ import annotations

import json
import math
from typing import List

import numpy as np
import pytest

from repro.core.params import MachineParams
from repro.dynamic.adversary import (
    ArrivalTrace,
    BurstyAdversary,
    RotatingTargetAdversary,
    SingleTargetAdversary,
    UniformAdversary,
    check_compliance,
)
from repro.dynamic.protocols import (
    AlgorithmBProtocol,
    BSPgIntervalProtocol,
    ImmediateProtocol,
)
from repro.dynamic.simulation import BatchRecord, DynamicResult, run_dynamic

P, W, HORIZON = 64, 32, 2_000


# ----------------------------------------------------------------------
# Frozen quadratic references (the pre-rewrite implementations, verbatim
# modulo the module-private names)
# ----------------------------------------------------------------------


def _window_masked(trace: ArrivalTrace, start: int, end: int) -> ArrivalTrace:
    mask = (trace.t >= start) & (trace.t < end)
    return ArrivalTrace(
        p=trace.p,
        horizon=trace.horizon,
        t=trace.t[mask],
        src=trace.src[mask],
        dest=trace.dest[mask],
        length=trace.length[mask] if trace.length is not None else None,
    )


def run_dynamic_quadratic(protocol, trace: ArrivalTrace) -> DynamicResult:
    interval = protocol.interval
    horizon = trace.horizon
    n_intervals = max(1, -(-horizon // interval))
    batches: List[BatchRecord] = []
    finish_prev = 0.0
    for i in range(n_intervals):
        start_t, end_t = i * interval, min((i + 1) * interval, horizon)
        batch = _window_masked(trace, start_t, end_t)
        ready = float(end_t)
        start = max(ready, finish_prev)
        service = protocol.service_time(batch) if batch.n else 0.0
        finish = start + service
        batches.append(
            BatchRecord(index=i, n=batch.n, ready_at=ready, start=start, finish=finish)
        )
        finish_prev = finish
    sample_times = [float(k * interval) for k in range(1, n_intervals + 1)]
    arrivals_csum = np.searchsorted(trace.t, np.asarray(sample_times), side="right")
    backlog = np.zeros(len(sample_times), dtype=np.int64)
    for idx, t_s in enumerate(sample_times):
        served = sum(b.n for b in batches if b.finish <= t_s)
        backlog[idx] = int(arrivals_csum[idx]) - served
    return DynamicResult(
        horizon=horizon,
        interval=interval,
        batches=batches,
        backlog_times=np.asarray(sample_times),
        backlog=backlog,
    )


def check_compliance_quadratic(trace: ArrivalTrace, w: int, alpha: float, beta: float):
    sizes = []
    size = w
    while size <= max(trace.horizon, w):
        sizes.append(size)
        size *= 2
    for L in sizes:
        budget = math.ceil(alpha * L)
        local = math.ceil(beta * L)
        per_step = np.bincount(trace.t, minlength=trace.horizon + 1)
        csum = np.concatenate([[0], np.cumsum(per_step)])
        for start in range(0, max(1, trace.horizon - L + 1), max(1, w // 2)):
            end = min(start + L, trace.horizon)
            total = csum[end] - csum[start]
            if total > budget:
                return False, f"{total} messages in window [{start},{end}) > {budget}"
            mask = (trace.t >= start) & (trace.t < end)
            if mask.any():
                sc = np.bincount(trace.src[mask], minlength=trace.p)
                dc = np.bincount(trace.dest[mask], minlength=trace.p)
                if sc.max() > local:
                    return False, (
                        f"source {int(np.argmax(sc))} injects {int(sc.max())} "
                        f"in window [{start},{end}) > {local}"
                    )
                if dc.max() > local:
                    return False, (
                        f"dest {int(np.argmax(dc))} receives {int(dc.max())} "
                        f"in window [{start},{end}) > {local}"
                    )
    return True, "ok"


# ----------------------------------------------------------------------
# Trace fixtures
# ----------------------------------------------------------------------


def _traces():
    yield "single", SingleTargetAdversary(P, W, beta=0.5).generate(HORIZON)
    yield "uniform", UniformAdversary(P, W, alpha=4.0, beta=0.5).generate(
        HORIZON, seed=7
    )
    yield "bursty", BurstyAdversary(P, W, alpha=2.0, beta=0.25).generate(HORIZON)
    yield "rotating", RotatingTargetAdversary(P, W, beta=0.75).generate(
        HORIZON, seed=3
    )
    yield "empty", ArrivalTrace(
        P, HORIZON, np.zeros(0, dtype=np.int64),
        np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
    )


TRACES = dict(_traces())


# ----------------------------------------------------------------------
# run_dynamic byte-identity
# ----------------------------------------------------------------------


def _protocols(seed=0):
    params_g = MachineParams(p=P, g=4.0, L=8.0)
    params_m = MachineParams(p=P, m=8, L=8.0)
    return {
        "bspg": lambda: BSPgIntervalProtocol(params_g, W),
        "algob": lambda: AlgorithmBProtocol(params_m, W, alpha=4.0, seed=seed),
        "immediate": lambda: ImmediateProtocol(params_m),
    }


@pytest.mark.parametrize("trace_name", sorted(TRACES))
@pytest.mark.parametrize("proto_name", sorted(_protocols()))
def test_run_dynamic_byte_identical(trace_name, proto_name):
    trace = TRACES[trace_name]
    make = _protocols(seed=42)[proto_name]
    # Fresh protocol instances: AlgorithmB consumes RNG per served batch,
    # so the two runs must start from identical RNG state.
    got = run_dynamic(make(), trace).to_dict()
    want = run_dynamic_quadratic(make(), trace).to_dict()
    assert json.dumps(got, sort_keys=True) == json.dumps(want, sort_keys=True)


def test_run_dynamic_batches_identical():
    trace = TRACES["uniform"]
    make = _protocols(seed=1)["algob"]
    got = run_dynamic(make(), trace)
    want = run_dynamic_quadratic(make(), trace)
    assert len(got.batches) == len(want.batches)
    for a, b in zip(got.batches, want.batches):
        assert (a.index, a.n, a.ready_at, a.start, a.finish) == (
            b.index, b.n, b.ready_at, b.start, b.finish
        )
    assert got.backlog_times.dtype == np.float64
    assert np.array_equal(got.backlog_times, want.backlog_times)
    assert got.backlog.dtype == np.int64
    assert np.array_equal(got.backlog, want.backlog)


def test_window_slices_match_mask_semantics():
    trace = TRACES["uniform"]
    for start, end in [(0, 0), (0, 1), (5, 37), (0, HORIZON), (HORIZON, HORIZON)]:
        got = trace.window(start, end)
        want = _window_masked(trace, start, end)
        assert np.array_equal(got.t, want.t)
        assert np.array_equal(got.src, want.src)
        assert np.array_equal(got.dest, want.dest)
        assert np.array_equal(got.length, want.length)


# ----------------------------------------------------------------------
# check_compliance identity (ok and every violation branch)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("trace_name", sorted(TRACES))
def test_check_compliance_ok_traces(trace_name):
    trace = TRACES[trace_name]
    # generous rates: every adversary trace above is compliant at these
    got = check_compliance(trace, W, alpha=8.0, beta=1.0)
    want = check_compliance_quadratic(trace, W, alpha=8.0, beta=1.0)
    assert got == want
    assert got == (True, "ok")


def _burst_trace(k: int, src: int = 0, dest: int = 1, at: int = 0) -> ArrivalTrace:
    t = np.full(k, at, dtype=np.int64)
    return ArrivalTrace(
        P, HORIZON, t,
        np.full(k, src, dtype=np.int64), np.full(k, dest, dtype=np.int64),
    )


def test_check_compliance_total_violation_message_identical():
    trace = _burst_trace(100)  # 100 messages at t=0
    got = check_compliance(trace, W, alpha=0.5, beta=0.5)
    want = check_compliance_quadratic(trace, W, alpha=0.5, beta=0.5)
    assert got == want
    assert got[0] is False and "messages in window" in got[1]


def test_check_compliance_source_violation_message_identical():
    # Global budget generous, per-source cap tight: source branch fires.
    trace = _burst_trace(20, src=5, dest=9)
    got = check_compliance(trace, W, alpha=10.0, beta=0.25)
    want = check_compliance_quadratic(trace, W, alpha=10.0, beta=0.25)
    assert got == want
    assert got[0] is False and got[1].startswith("source 5 injects 20")


def test_check_compliance_dest_violation_message_identical():
    # Spread over sources (≤ cap each) but funnel into one destination.
    k, cap_ok_sources = 24, 12
    src = np.arange(k, dtype=np.int64) % cap_ok_sources
    trace = ArrivalTrace(
        P, HORIZON, np.zeros(k, dtype=np.int64), src,
        np.full(k, 33, dtype=np.int64),
    )
    got = check_compliance(trace, W, alpha=10.0, beta=0.1)
    want = check_compliance_quadratic(trace, W, alpha=10.0, beta=0.1)
    assert got == want
    assert got[0] is False and got[1].startswith("dest 33 receives 24")


def test_check_compliance_late_window_violation_identical():
    # The violation sits in a mid-horizon window, so the first-violating-
    # window selection (not just window 0) must agree.
    trace = _burst_trace(50, src=2, dest=3, at=777)
    got = check_compliance(trace, W, alpha=0.5, beta=0.5)
    want = check_compliance_quadratic(trace, W, alpha=0.5, beta=0.5)
    assert got == want
    assert got[0] is False


def test_check_compliance_argmax_tiebreak_identical():
    # Two sources tied at the max: both implementations must name the
    # lowest id (np.argmax tie-breaking).
    k = 12
    src = np.array(([7] * 6) + ([3] * 6), dtype=np.int64)
    dest = (src + 1) % P
    trace = ArrivalTrace(P, HORIZON, np.zeros(k, dtype=np.int64), src, dest)
    got = check_compliance(trace, W, alpha=10.0, beta=0.1)
    want = check_compliance_quadratic(trace, W, alpha=10.0, beta=0.1)
    assert got == want
    assert got[1].startswith("source 3 ")


def test_check_compliance_horizon_smaller_than_window():
    trace = ArrivalTrace(
        P, 8,
        np.array([0, 3, 7], dtype=np.int64),
        np.array([0, 1, 2], dtype=np.int64),
        np.array([1, 2, 3], dtype=np.int64),
    )
    for alpha, beta in [(1.0, 1.0), (0.01, 1.0), (1.0, 0.01)]:
        got = check_compliance(trace, W, alpha=alpha, beta=beta)
        want = check_compliance_quadratic(trace, W, alpha=alpha, beta=beta)
        assert got == want
