"""Unit and property tests for repro.util.intmath."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intmath import (
    ceil_div,
    ilog,
    ilog2,
    lg,
    log_star,
    next_pow2,
    safe_log_ratio,
)


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(6, 3) == 2

    def test_rounding_up(self):
        assert ceil_div(7, 3) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_one(self):
        assert ceil_div(1, 100) == 1

    def test_negative_denominator_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)
        with pytest.raises(ValueError):
            ceil_div(4, -1)

    def test_negative_numerator_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 3)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b) or ceil_div(a, b) == -(-a // b)

    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_bracketing(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a or a == 0
        assert q * b >= a


class TestIlog2:
    def test_one(self):
        assert ilog2(1) == 0

    def test_powers(self):
        for k in range(20):
            assert ilog2(1 << k) == k

    def test_between_powers(self):
        assert ilog2(9) == 3
        assert ilog2(1023) == 9

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ilog2(0)

    @given(st.integers(1, 2**60))
    def test_bracketing(self, n):
        k = ilog2(n)
        assert 2**k <= n < 2 ** (k + 1)


class TestIlog:
    def test_base3(self):
        assert ilog(27, 3) == 3
        assert ilog(26, 3) == 2

    def test_base_must_exceed_one(self):
        with pytest.raises(ValueError):
            ilog(5, 1)

    @given(st.integers(1, 10**12), st.integers(2, 100))
    def test_bracketing(self, n, b):
        k = ilog(n, b)
        assert b**k <= n < b ** (k + 1)


class TestLogStar:
    def test_small_values(self):
        assert log_star(0) == 0
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_monotone(self):
        vals = [log_star(n) for n in range(1, 100)]
        assert vals == sorted(vals)


class TestNextPow2:
    def test_values(self):
        assert next_pow2(0) == 1
        assert next_pow2(1) == 1
        assert next_pow2(2) == 2
        assert next_pow2(3) == 4
        assert next_pow2(1025) == 2048

    @given(st.integers(1, 2**40))
    def test_properties(self, n):
        q = next_pow2(n)
        assert q >= n
        assert q & (q - 1) == 0
        assert q < 2 * n


class TestLg:
    def test_clamped_below(self):
        assert lg(0.5) == 0.0
        assert lg(1.0) == 0.0

    def test_exact(self):
        assert lg(8.0) == 3.0

    def test_safe_log_ratio_degenerate_base(self):
        # lg p / lg g with g close to 1 degrades to lg p, not infinity
        assert safe_log_ratio(1024, 1.0) == pytest.approx(10.0)

    def test_safe_log_ratio_normal(self):
        assert safe_log_ratio(1024, 4) == pytest.approx(5.0)
