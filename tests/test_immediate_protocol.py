"""Tests for the §3 'send immediately' strawman protocol."""

import numpy as np
import pytest

from repro import LINEAR, MachineParams
from repro.dynamic import (
    AlgorithmBProtocol,
    ImmediateProtocol,
    UniformAdversary,
    run_dynamic,
)
from repro.dynamic.adversary import ArrivalTrace

P, M = 256, 16


def spike_trace(horizon=8000, spike=200, every=1000):
    """``spike`` messages from distinct sources land simultaneously every
    ``every`` steps — AQT-compliant (per-source count 1 per window) but a
    nightmare for unscheduled injection."""
    ts, srcs, dests = [], [], []
    for t0 in range(0, horizon, every):
        ts.extend([t0] * spike)
        srcs.extend(range(spike))
        dests.extend((np.arange(spike) + 1) % P)
    return ArrivalTrace(
        p=P,
        horizon=horizon,
        t=np.asarray(ts),
        src=np.asarray(srcs),
        dest=np.asarray(dests),
    )


@pytest.fixture
def glob():
    return MachineParams.matched_pair(p=P, m=M, L=1)[1]


class TestImmediateProtocol:
    def test_always_drains(self, glob):
        """The paper's point: in the BSP(m), the naive algorithm always
        succeeds (unlike the multiple-channel model, where >m contenders
        never terminate) — every batch gets a finite completion time, just
        a possibly very slow one."""
        res = run_dynamic(ImmediateProtocol(glob), spike_trace())
        assert all(np.isfinite(b.finish) for b in res.batches)
        served = [b for b in res.batches if b.n > 0]
        assert served and all(b.finish > b.start for b in served)

    def test_smooth_traffic_is_cheap(self, glob):
        trace = UniformAdversary(P, 128, alpha=4.0, beta=4.0).generate(10_000, seed=0)
        res = run_dynamic(ImmediateProtocol(glob), trace)
        assert res.is_stable()
        assert res.mean_sojourn <= 2.0

    def test_spikes_pay_the_exponential_penalty(self, glob):
        """A single 200-message step costs e^{200/16 - 1} ≈ 10^5 — the
        'possibly very slow' step."""
        res = run_dynamic(ImmediateProtocol(glob), spike_trace())
        worst = max(b.service for b in res.batches)
        assert worst >= np.exp(200 / M - 1) * 0.99

    def test_algorithm_b_beats_it_on_spikes(self, glob):
        trace = spike_trace()
        t_imm = run_dynamic(ImmediateProtocol(glob), trace).mean_sojourn
        t_algb = run_dynamic(
            AlgorithmBProtocol(glob, 128, alpha=200 / 128, epsilon=0.25, seed=1), trace
        ).mean_sojourn
        # batching + staggering flattens the spike into ~200/m slots
        assert t_algb < t_imm / 10

    def test_linear_penalty_tames_it(self, glob):
        """Under the linear (lower-bound) penalty the naive protocol is
        merely m-times-parallel FIFO — fine.  The exponential/linear split
        is exactly the paper's lower-vs-upper-bound modelling choice."""
        from repro import LINEAR

        res = run_dynamic(ImmediateProtocol(glob, penalty=LINEAR), spike_trace())
        worst = max(b.service for b in res.batches)
        assert worst == pytest.approx(200 / M, rel=0.01)

    def test_empty_step_costs_nothing(self, glob):
        proto = ImmediateProtocol(glob)
        empty = ArrivalTrace(
            p=P, horizon=10,
            t=np.zeros(0, dtype=np.int64),
            src=np.zeros(0, dtype=np.int64),
            dest=np.zeros(0, dtype=np.int64),
        )
        assert proto.service_time(empty) == 0.0

    def test_requires_global_machine(self):
        local, _ = MachineParams.matched_pair(p=P, m=M, L=1)
        with pytest.raises(ValueError):
            ImmediateProtocol(local)
