"""Tests for total exchange and the unbalanced "chatting" schedulers."""

import pytest

from repro.algorithms import (
    chatting_schedule_centralized,
    chatting_schedule_distributed,
    latin_square_schedule,
    total_exchange_lower_bound,
)
from repro.scheduling import evaluate_schedule
from repro.util.intmath import ceil_div
from repro.workloads import total_exchange_relation


class TestLatinSquare:
    @pytest.mark.parametrize("p,m", [(8, 2), (16, 4), (16, 16), (9, 4)])
    def test_valid(self, p, m):
        sched = latin_square_schedule(p, m)
        sched.check_valid(require_consecutive=True)

    def test_never_overloads(self):
        sched = latin_square_schedule(32, 8)
        counts = sched.slot_counts()
        assert counts.max() <= 8

    def test_span_meets_lower_bound_when_m_divides_p(self):
        p, m = 32, 8
        sched = latin_square_schedule(p, m)
        assert sched.span == total_exchange_lower_bound(p, m)

    def test_span_with_lengths(self):
        p, m, ln = 16, 4, 3
        sched = latin_square_schedule(p, m, length=ln)
        assert sched.span == (p - 1) * ceil_div(p, m) * ln
        sched.check_valid(require_consecutive=True)

    def test_every_pair_scheduled(self):
        p = 8
        sched = latin_square_schedule(p, 4)
        pairs = set(zip(sched.rel.src.tolist(), sched.rel.dest.tolist()))
        assert len(pairs) == p * (p - 1)

    def test_each_round_is_permutation(self):
        """Within each latin-square round, sends and receives are both
        1-balanced — the schedule's defining property."""
        p, m = 12, 4
        sched = latin_square_schedule(p, m)
        rel = sched.rel
        round_of = (rel.dest - rel.src) % p
        for r in range(1, p):
            mask = round_of == r
            assert sorted(rel.src[mask].tolist()) == list(range(p))
            assert sorted(rel.dest[mask].tolist()) == list(range(p))

    def test_lower_bound_values(self):
        assert total_exchange_lower_bound(8, 2) == ceil_div(8 * 7, 2)
        assert total_exchange_lower_bound(8, 8) == 7
        with pytest.raises(ValueError):
            total_exchange_lower_bound(0, 2)


class TestChatting:
    def make_rel(self, p=24, seed=0):
        return total_exchange_relation(p, seed=seed, max_length=6)

    def test_centralized_schedule_valid_and_tight(self):
        rel = self.make_rel()
        sched, pre = chatting_schedule_centralized(rel, m=6)
        sched.check_valid(require_consecutive=True)
        # the centrally computed schedule is near-optimal...
        rep = evaluate_schedule(sched, m=6)
        assert rep.ratio <= 1.3
        # ...but its preprocessing costs Θ(p^2)
        assert pre >= rel.p**2

    def test_distributed_preprocessing_is_tau(self):
        rel = self.make_rel()
        sched, pre = chatting_schedule_distributed(rel, m=6, L=2.0, seed=1)
        sched.check_valid(require_consecutive=True)
        # tau = O(p/m + L + L lg m / lg L) << p^2
        assert pre < rel.p**2 / 10

    def test_crossover_total_cost(self):
        """The paper's Section 3 point: for n << p^2 descriptors dominate
        the centralized approach; the distributed one wins end-to-end."""
        rel = total_exchange_relation(32, seed=2)  # unit lengths: n = p(p-1)
        m = 8
        c_sched, c_pre = chatting_schedule_centralized(rel, m=m)
        d_sched, d_pre = chatting_schedule_distributed(rel, m=m, seed=3)
        c_total = c_pre + evaluate_schedule(c_sched, m=m).completion_time
        d_total = d_pre + evaluate_schedule(d_sched, m=m).completion_time
        assert d_total < c_total

    def test_distributed_schedule_cost_within_2_plus_eps(self):
        rel = self.make_rel(p=32, seed=4)
        m = 8
        sched, _ = chatting_schedule_distributed(rel, m=m, epsilon=0.2, seed=5)
        rep = evaluate_schedule(sched, m=m)
        assert rep.completion_time <= (2 + 0.2) * max(rel.n / m, rel.h) + rel.max_length
