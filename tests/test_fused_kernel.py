"""Bit-identity gates for the fused superstep kernel.

The fused engine path (arena-backed freeze + kernel pricing + bincount
delivery), the compiled-superstep replay, and the direct routing fast path
are *optimizations*, not semantic changes: every model time, cost
breakdown, stats dict, frozen record column and per-processor result must
be exactly equal to the legacy gather path's.  This module is the gate —
a full model × {plain, faulted, traced} matrix over scalar-call and
columnar-call programs, plus the Numba-fallback and arena-reuse contracts.
"""

import numpy as np
import pytest

from repro.core import engine, kernels
from repro.core.compiled import CompiledProgram, compile_program
from repro.core.costs import (
    EXPONENTIAL,
    LINEAR,
    CapacityPenalty,
    ExponentialPenalty,
    LinearPenalty,
    PolynomialPenalty,
)
from repro.core.params import MachineParams
from repro.faults import FaultPlan
from repro.models.bsp_g import BSPg
from repro.models.bsp_m import BSPm
from repro.models.qsm_g import QSMg
from repro.models.qsm_m import QSMm
from repro.models.self_scheduling import SelfSchedulingBSPm
from repro.obs import Tracer, tracing
from repro.scheduling import unbalanced_send
from repro.scheduling.execute import execute_schedule
from repro.workloads import uniform_random_relation

P = 8
SPAN = P * 6

MESSAGE_MODELS = [BSPg, BSPm, SelfSchedulingBSPm]
QSM_MODELS = [QSMg, QSMm]
ALL_MODELS = MESSAGE_MODELS + QSM_MODELS


def _machine(model, penalty=None):
    params = MachineParams(p=P, g=2.0, L=8.0, m=4)
    if penalty is not None and model in (BSPm, QSMm):
        mach = model(params, penalty=penalty)
    else:
        mach = model(params)
    if mach.uses_shared_memory:
        mach.use_dense_memory(SPAN)
    return mach


def _msg_program(ctx, p):
    """Scalar sends (tuple / int / None payloads) interleaved with
    ``send_many`` over three supersteps — exercises chunk merging, slot
    assignment and every payload-column representation."""
    ctx.work(1.0 + 0.25 * ctx.pid)
    ctx.send((ctx.pid + 1) % p, payload=ctx.pid)
    ctx.send((ctx.pid + 2) % p, size=2)
    yield
    first = _norm(ctx.receive().payloads)
    dests = (np.arange(3, dtype=np.int64) + ctx.pid + 1) % p
    ctx.send_many(dests, payloads=np.arange(3, dtype=np.int64) + 10 * ctx.pid)
    ctx.send((ctx.pid + 3) % p, payload=("tag", ctx.pid))
    yield
    second = _norm(ctx.receive().payloads)
    if ctx.pid % 2 == 0:
        ctx.send((ctx.pid + 1) % p, payload=None, size=3)
    yield
    third = _norm(ctx.receive().payloads)
    return (first, second, third)


def _qsm_program(ctx, p):
    """Scalar and batched shared-memory requests over two phases."""
    k = 4
    addrs = (ctx.pid * k + np.arange(k, dtype=np.int64)) % SPAN
    ctx.work(0.5 * ctx.pid)
    ctx.write_many(addrs, np.arange(k, dtype=np.int64) + 100 * ctx.pid)
    ctx.write((ctx.pid * 7) % SPAN, -ctx.pid)
    yield
    handle = ctx.read_many((addrs + k) % SPAN)
    scalar = ctx.read((ctx.pid * 11) % SPAN)
    yield
    return (_norm(handle.values), _norm(scalar.value))


def _norm(value):
    """Canonical nested-python form of a result for cross-path equality
    (unwraps ``CorruptedPayload`` markers, flattens arrays)."""
    from repro.faults.plan import CorruptedPayload

    if isinstance(value, CorruptedPayload):
        return ("corrupted", _norm(value.original))
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_norm(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    return value


def _column_equal(a, b):
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, np.ndarray) != isinstance(b, np.ndarray):
        return False
    if isinstance(a, np.ndarray):
        return a.dtype == b.dtype and np.array_equal(a, b)
    return _norm(list(a)) == _norm(list(b))


def _assert_records_identical(res_a, res_b):
    assert res_a.time == res_b.time
    assert len(res_a.records) == len(res_b.records)
    for ra, rb in zip(res_a.records, res_b.records):
        assert ra.cost == rb.cost
        assert ra.stats == rb.stats
        assert ra.breakdown == rb.breakdown
        assert ra.work == rb.work
        ma, mb = ra.msg_batch, rb.msg_batch
        for col in ("src", "dest", "size", "slot", "consecutive"):
            assert np.array_equal(getattr(ma, col), getattr(mb, col)), col
        assert _column_equal(ma.payload, mb.payload)
        for ba, bb in ((ra.read_batch, rb.read_batch), (ra.write_batch, rb.write_batch)):
            assert np.array_equal(ba.pid, bb.pid)
            assert np.array_equal(ba.slot, bb.slot)
            assert _column_equal(
                ba.addr if isinstance(ba.addr, np.ndarray) else list(ba.addr or []),
                bb.addr if isinstance(bb.addr, np.ndarray) else list(bb.addr or []),
            )
            assert _column_equal(ba.value, bb.value)


def _assert_results_identical(res_a, res_b):
    assert len(res_a.results) == len(res_b.results)
    for a, b in zip(res_a.results, res_b.results):
        assert _norm(a) == _norm(b)


def _run_both(model, *, faulted=False, traced=False):
    """Run the model's workload program on the fused and legacy paths."""
    program = _qsm_program if model in QSM_MODELS else _msg_program
    out = []
    for fused in (True, False):
        mach = _machine(model)
        if faulted:
            mach.inject_faults(
                FaultPlan(
                    seed=7,
                    drop_rate=0.2,
                    duplicate_rate=0.15,
                    reorder_rate=0.2,
                    corrupt_rate=0.15,
                )
            )
        if traced:
            with tracing(Tracer()) as tracer:
                res = mach.run(program, args=(P,), fused=fused)
            res._tracer = tracer
        else:
            res = mach.run(program, args=(P,), fused=fused)
        res._memory = dict(mach.shared_memory) if mach.uses_shared_memory else None
        out.append(res)
    return out


@pytest.mark.parametrize("model", ALL_MODELS)
@pytest.mark.parametrize("variant", ["plain", "faulted", "traced"])
def test_fused_matches_legacy(model, variant):
    res_f, res_l = _run_both(
        model, faulted=(variant == "faulted"), traced=(variant == "traced")
    )
    _assert_records_identical(res_f, res_l)
    _assert_results_identical(res_f, res_l)
    if res_f._memory is not None:
        assert res_f._memory == res_l._memory
    if variant == "traced":
        phases_f = {s.name for s in res_f._tracer.find(cat="phase")}
        phases_l = {s.name for s in res_l._tracer.find(cat="phase")}
        assert phases_f == {"fused_superstep"}
        assert phases_l == {"freeze", "price", "deliver"}


@pytest.mark.parametrize(
    "penalty",
    [LINEAR, EXPONENTIAL, PolynomialPenalty(degree=3.0)],
    ids=["linear", "exponential", "polynomial"],
)
def test_penalty_families_identical_across_paths(penalty):
    res_f = _machine(BSPm, penalty=penalty).run(_msg_program, args=(P,), fused=True)
    res_l = _machine(BSPm, penalty=penalty).run(_msg_program, args=(P,), fused=False)
    _assert_records_identical(res_f, res_l)
    _assert_results_identical(res_f, res_l)


def test_capacity_penalty_still_raises_on_fused_path():
    def overload(ctx, p):
        # every processor injects into slot 0 -> m_t = p > m, overload
        ctx.send((ctx.pid + 1) % p, slot=0)
        yield

    mach = BSPm(MachineParams(p=P, L=1.0, m=4), penalty=CapacityPenalty())
    with pytest.raises(OverflowError):
        mach.run(overload, args=(P,), fused=True)


def test_direct_routing_matches_trampoline():
    rel = uniform_random_relation(32, 4_000, seed=2)
    sched = unbalanced_send(rel, 8, 0.2, seed=3)
    res_d = execute_schedule(BSPm(MachineParams(p=32, m=8, L=1)), sched)
    previous = engine.fused_default()
    engine.set_fused_default(False)
    try:
        res_t = execute_schedule(BSPm(MachineParams(p=32, m=8, L=1)), sched)
    finally:
        engine.set_fused_default(previous)
    _assert_records_identical(res_d, res_t)
    _assert_results_identical(res_d, res_t)


def test_compiled_replay_reproduces_recording():
    mach = _machine(BSPm)
    compiled, res_rec = CompiledProgram.record(mach, _msg_program, args=(P,))
    res_rep = compiled.replay(_machine(BSPm))
    _assert_records_identical(res_rec, res_rep)
    _assert_results_identical(res_rec, res_rep)


def test_compiled_replay_reprices_under_new_machine():
    compiled = compile_program(_machine(BSPm), _msg_program, args=(P,))
    for target in (
        BSPm(MachineParams(p=P, g=2.0, L=50.0, m=4), penalty=LINEAR),
        BSPm(MachineParams(p=P, g=2.0, L=8.0, m=2)),
    ):
        res_rep = compiled.replay(target)
        res_fresh = target.__class__(target.params, penalty=target.penalty).run(
            _msg_program, args=(P,)
        )
        _assert_records_identical(res_rep, res_fresh)


def test_compiled_replay_applies_writes_to_shared_memory():
    mach = _machine(QSMm)
    compiled, res_rec = CompiledProgram.record(mach, _qsm_program, args=(P,))
    expected = dict(mach.shared_memory)
    target = _machine(QSMm)
    res_rep = compiled.replay(target)
    _assert_records_identical(res_rec, res_rep)
    assert dict(target.shared_memory) == expected


def test_compiled_mode_refuses_fault_injectors():
    mach = _machine(BSPm)
    mach.inject_faults(FaultPlan(seed=1, drop_rate=0.5))
    with pytest.raises(ValueError, match="fault injector"):
        compile_program(mach, _msg_program, args=(P,))
    compiled = compile_program(_machine(BSPm), _msg_program, args=(P,))
    faulty = _machine(BSPm)
    faulty.inject_faults(FaultPlan(seed=1, drop_rate=0.5))
    with pytest.raises(ValueError, match="fault injector"):
        compiled.replay(faulty)


def test_numba_fallback_when_absent(monkeypatch):
    """With the JIT kernel unavailable, ``penalty_charges`` silently uses
    the NumPy implementation and produces the historical charges."""
    monkeypatch.setattr(kernels, "_jit_charges", None)
    counts = np.array([0, 1, 3, 4, 9, 17], dtype=np.int64)
    m = 4
    for penalty, kind, param in (
        (LinearPenalty(), kernels.KIND_LINEAR, 0.0),
        (ExponentialPenalty(), kernels.KIND_EXPONENTIAL, 0.0),
        (PolynomialPenalty(degree=2.5), kernels.KIND_POLYNOMIAL, 2.5),
    ):
        via_kernel = kernels.penalty_charges(counts, m, kind, param)
        via_penalty = penalty(counts, m)
        rho = counts[counts > m] / m
        expected = penalty.overload(rho)
        assert np.array_equal(via_kernel, via_penalty)
        assert np.array_equal(via_kernel[counts > m], expected)
        assert np.array_equal(
            via_kernel[(counts >= 1) & (counts <= m)],
            np.ones(int(np.sum((counts >= 1) & (counts <= m)))),
        )
        assert via_kernel[counts < 1].sum() == 0.0


def test_numba_escape_hatch_disables_jit(monkeypatch):
    monkeypatch.setenv("REPRO_NUMBA", "0")
    assert kernels._load_numba() is None


def test_arena_reuse_no_growth_on_rerun():
    """Steady-state reruns on one machine never regrow the arenas."""
    mach = _machine(BSPm)
    mach.run(_msg_program, args=(P,), fused=True)
    assert mach._arenas is not None
    grows = [arena.grows for arena in mach._arenas]
    for _ in range(3):
        mach.run(_msg_program, args=(P,), fused=True)
    assert [arena.grows for arena in mach._arenas] == grows


def test_fused_default_toggle_and_env(monkeypatch):
    previous = engine.fused_default()
    try:
        engine.set_fused_default(False)
        assert engine.fused_default() is False
        engine.set_fused_default(True)
        assert engine.fused_default() is True
    finally:
        engine.set_fused_default(previous)
