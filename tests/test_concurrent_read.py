"""Tests for Section 5: leader recognition and the CRCW-step simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrent_read import (
    leader_recognition_pramm,
    leader_recognition_qsm_m,
    make_leader_input,
    simulate_concurrent_read_step,
)
from repro.theory.bounds import leader_recognition_qsm_m_lower


class TestLeaderInput:
    def test_one_hot(self):
        rom = make_leader_input(8, 3)
        assert sum(rom) == 1 and rom[3] == 1

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            make_leader_input(4, 4)


class TestLeaderPRAMm:
    @pytest.mark.parametrize("leader", [0, 7, 100, 255])
    def test_correct(self, leader):
        res, answers = leader_recognition_pramm(256, leader)
        assert set(answers) == {leader}

    def test_constant_time_with_wide_words(self):
        res, _ = leader_recognition_pramm(1 << 10, 5, w=64)
        assert res.time <= 4  # lg p / w < 1: O(1) steps

    def test_chunked_address_small_words(self):
        res, answers = leader_recognition_pramm(256, 200, w=2)
        assert set(answers) == {200}
        # ceil(9/2) = 5 write steps + 5 read steps
        assert res.time >= 8

    def test_time_grows_as_words_shrink(self):
        t_wide = leader_recognition_pramm(1 << 12, 9, w=64)[0].time
        t_narrow = leader_recognition_pramm(1 << 12, 9, w=1)[0].time
        assert t_narrow > t_wide

    def test_m_too_small_rejected(self):
        with pytest.raises(ValueError):
            leader_recognition_pramm(1 << 16, 3, m=1, w=1)


class TestLeaderQSMm:
    @pytest.mark.parametrize("leader", [0, 1, 31, 200])
    def test_correct(self, leader):
        res, answers = leader_recognition_qsm_m(256, leader, m=16)
        assert set(answers) == {leader}

    def test_time_above_lemma_53(self):
        p, m, w = 1024, 8, 64
        res, _ = leader_recognition_qsm_m(p, 17, m=m)
        assert res.time >= leader_recognition_qsm_m_lower(p, m, w)

    def test_time_tracks_p_over_m(self):
        t1 = leader_recognition_qsm_m(256, 3, m=8)[0].time
        t2 = leader_recognition_qsm_m(1024, 3, m=8)[0].time
        assert t2 >= 2.5 * t1  # ~linear in p at fixed m

    def test_gap_vs_pramm_grows_with_p(self):
        """The ER-vs-CR separation: the QSM(m)/PRAM(m) time ratio grows
        roughly like p/m."""
        ratios = []
        for p in (64, 256, 1024):
            t_qsm = leader_recognition_qsm_m(p, 7, m=8)[0].time
            t_pram = leader_recognition_pramm(p, 7)[0].time
            ratios.append(t_qsm / t_pram)
        assert ratios[0] < ratios[1] < ratios[2]


class TestConcurrentReadSimulation:
    def _run(self, p, m, addrs, n_cells=32, seed=0):
        memory = {x: 1000 + x for x in range(n_cells)}
        res, vals = simulate_concurrent_read_step(p, m, addrs, memory)
        assert vals == [memory[a] for a in addrs]
        return res

    def test_all_same_address(self):
        """Maximum concurrency: everyone reads one cell."""
        self._run(64, 8, [5] * 64)

    def test_all_distinct(self):
        self._run(32, 8, list(range(32)))

    def test_mixed_pattern(self):
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 4, size=128).tolist()
        self._run(128, 16, addrs)

    def test_contention_stays_bounded(self):
        """The paper's central-read argument: contention never exceeds m
        (reached only in the one designated-reader phase; every central
        read step itself is contention-1 thanks to sortedness)."""
        m = 8
        res = self._run(64, m, [3] * 64)
        assert res.stat_max("kappa") <= m
        hot_phases = [r for r in res.records if r.stats.get("kappa", 0) > 2]
        assert len(hot_phases) <= 1  # only the designated-read phase

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            simulate_concurrent_read_step(48, 8, [0] * 48, {0: 1})

    def test_address_count_checked(self):
        with pytest.raises(ValueError):
            simulate_concurrent_read_step(8, 2, [0] * 4, {0: 1})

    def test_central_read_cost_scales_with_p_over_m(self):
        """Fixing p and halving m should roughly double the non-sorting
        part of the cost; the total is sort-dominated so we check the
        central phase via superstep counts."""
        t_hi = self._run(64, 32, [2] * 64).time
        t_lo = self._run(64, 4, [2] * 64).time
        assert t_lo > t_hi

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_random_patterns(self, seed):
        rng = np.random.default_rng(seed)
        p, m = 32, 4
        addrs = rng.integers(0, 10, size=p).tolist()
        self._run(p, m, addrs, n_cells=10, seed=seed)


class TestConcurrentWriteSimulation:
    """The write half of Theorem 5.1: dedup by sorting, one writer per
    address."""

    def _run(self, p, m, addrs, seed=0):
        from repro.concurrent_read import simulate_concurrent_write_step

        vals = [f"v{i}" for i in range(p)]
        res, mem = simulate_concurrent_write_step(
            p, m, addrs, vals, memory={x: None for x in set(addrs)}
        )
        for a in set(addrs):
            winner = min(i for i in range(p) if addrs[i] == a)
            assert mem[a] == f"v{winner}", a
        return res

    def test_all_same_address(self):
        res = self._run(32, 4, [7] * 32)
        # exactly one write reached the cell, contention stayed at 1
        assert res.stat_max("kappa") <= 2

    def test_all_distinct(self):
        self._run(32, 8, list(range(32)))

    def test_mixed(self):
        import numpy as np

        rng = np.random.default_rng(1)
        self._run(64, 8, rng.integers(0, 6, size=64).tolist())

    def test_no_overload(self):
        res = self._run(64, 8, [3] * 64)
        assert res.stat_max("overloaded_slots") == 0

    def test_power_of_two_required(self):
        from repro.concurrent_read import simulate_concurrent_write_step

        with pytest.raises(ValueError, match="power of two"):
            simulate_concurrent_write_step(12, 4, [0] * 12, [0] * 12, {})

    def test_length_checked(self):
        from repro.concurrent_read import simulate_concurrent_write_step

        with pytest.raises(ValueError):
            simulate_concurrent_write_step(8, 2, [0] * 4, [0] * 8, {})


class TestPRAMmSummation:
    """Native PRAM(m) algorithm design under the m-cell constraint."""

    def test_correct(self):
        from repro.concurrent_read import pramm_summation

        res, total = pramm_summation(list(range(64)), p=64, m=8)
        assert total == sum(range(64))

    @pytest.mark.parametrize("p,m", [(16, 1), (16, 16), (100, 7), (64, 32)])
    def test_sizes(self, p, m):
        from repro.concurrent_read import pramm_summation

        rom = [i * i for i in range(p)]
        res, total = pramm_summation(rom, p=p, m=m)
        assert total == sum(rom)
        assert all(v == total for v in res.results)

    def test_time_is_p_over_m_plus_lg_m(self):
        from repro.concurrent_read import pramm_summation
        from repro.util.intmath import ceil_div, ilog2

        p, m = 256, 16
        res, _ = pramm_summation([1] * p, p=p, m=m)
        bound = 2 * ceil_div(p, m) + 3 * (ilog2(m) + 1) + 3
        assert res.time <= bound

    def test_one_cell(self):
        from repro.concurrent_read import pramm_summation

        res, total = pramm_summation([2] * 10, p=10, m=1)
        assert total == 20

    def test_bad_m(self):
        from repro.concurrent_read import pramm_summation

        with pytest.raises(ValueError):
            pramm_summation([1], p=1, m=0)
