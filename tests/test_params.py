"""Tests for MachineParams."""

import math

import pytest

from repro import MachineParams


class TestConstruction:
    def test_defaults(self):
        p = MachineParams(p=4)
        assert p.g == 1.0 and p.m is None and p.L == 1.0 and p.o == 0.0

    def test_rejects_nonpositive_p(self):
        with pytest.raises(ValueError):
            MachineParams(p=0)

    def test_rejects_non_int_p(self):
        with pytest.raises(TypeError):
            MachineParams(p=4.0)

    def test_rejects_gap_below_one(self):
        with pytest.raises(ValueError):
            MachineParams(p=4, g=0.5)

    def test_rejects_non_int_m(self):
        with pytest.raises(TypeError):
            MachineParams(p=4, m=2.0)

    def test_rejects_nonpositive_m(self):
        with pytest.raises(ValueError):
            MachineParams(p=4, m=0)

    def test_rejects_nonpositive_L(self):
        with pytest.raises(ValueError):
            MachineParams(p=4, L=0)

    def test_rejects_negative_o(self):
        with pytest.raises(ValueError):
            MachineParams(p=4, o=-1)

    def test_frozen(self):
        params = MachineParams(p=4)
        with pytest.raises(Exception):
            params.p = 8


class TestNonFiniteRejection:
    """nan fails every comparison, so plain `> 0` guards admit it silently;
    inf satisfies `> 0`.  Both must be rejected with errors naming the
    offending parameter."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_rejects_non_finite_L(self, bad):
        with pytest.raises(ValueError, match="L"):
            MachineParams(p=4, L=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_rejects_non_finite_o(self, bad):
        with pytest.raises(ValueError, match="o"):
            MachineParams(p=4, o=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_non_finite_g(self, bad):
        with pytest.raises(ValueError, match="g"):
            MachineParams(p=4, g=bad)

    def test_error_messages_name_the_parameter_and_value(self):
        with pytest.raises(ValueError, match=r"L must be finite.*nan"):
            MachineParams(p=4, L=math.nan)
        with pytest.raises(ValueError, match=r"o must be non-negative.*-2"):
            MachineParams(p=4, o=-2.0)
        with pytest.raises(ValueError, match=r"L must be positive.*-1"):
            MachineParams(p=4, L=-1.0)

    def test_rejects_bool_p_and_m(self):
        # bool is an int subclass; p=True must not sneak in as p=1
        with pytest.raises(TypeError):
            MachineParams(p=True)
        with pytest.raises(TypeError):
            MachineParams(p=4, m=True)

    def test_finite_values_still_accepted(self):
        params = MachineParams(p=4, g=2.5, m=2, L=16.0, o=0.5)
        assert params.L == 16.0 and params.o == 0.5


class TestDerived:
    def test_require_m(self):
        assert MachineParams(p=4, m=2).require_m() == 2
        with pytest.raises(ValueError):
            MachineParams(p=4).require_m()

    def test_aggregate_bandwidth_local(self):
        assert MachineParams(p=16, g=4.0).aggregate_bandwidth_local == 4.0

    def test_implied_gap(self):
        assert MachineParams(p=16, m=4).implied_gap == 4.0

    def test_with_(self):
        params = MachineParams(p=4, L=2.0)
        q = params.with_(L=8.0)
        assert q.L == 8.0 and q.p == 4 and params.L == 2.0


class TestMatchedPair:
    def test_equal_aggregate_bandwidth(self):
        local, global_ = MachineParams.matched_pair(p=64, m=8, L=4)
        assert local.p == global_.p == 64
        assert local.g == 8.0
        assert global_.m == 8
        # p * (1/g) == m — the paper's comparison setting
        assert local.aggregate_bandwidth_local == global_.m

    def test_m_exceeding_p_rejected(self):
        with pytest.raises(ValueError):
            MachineParams.matched_pair(p=4, m=8)

    def test_m_equal_p_gives_unit_gap(self):
        local, global_ = MachineParams.matched_pair(p=8, m=8)
        assert local.g == 1.0

    def test_carries_extras(self):
        local, global_ = MachineParams.matched_pair(p=8, m=2, L=3.0, o=1.5, word_bits=32)
        for q in (local, global_):
            assert q.L == 3.0 and q.o == 1.5 and q.word_bits == 32
