"""Tests for the programmatic experiment registry."""

import json

import pytest

from repro.experiments import (
    UnknownExperimentError,
    list_experiments,
    run_experiment,
)


class TestRegistry:
    def test_list(self):
        names = list_experiments()
        assert "table1_measured" in names
        assert "dynamic_stability" in names
        assert names == sorted(names)

    def test_unknown_name(self):
        with pytest.raises(UnknownExperimentError, match="unknown experiment"):
            run_experiment("bogus")

    def test_unknown_name_is_a_value_error_with_choices(self):
        with pytest.raises(ValueError) as excinfo:
            run_experiment("bogus")
        err = excinfo.value
        assert err.name == "bogus"
        assert err.choices == list_experiments()
        assert "choose from" in str(err)

    def test_every_experiment_runs_and_serializes(self):
        small_kwargs = {
            "table1_measured": dict(p=64, m=8, L=4.0),
            "unbalanced_send": dict(p=128, m=16, n=5000, trials=3),
            "dynamic_stability": dict(p=64, m=8, w=64, horizon=4000),
            "leader_gap": dict(m=8),
            "self_scheduling": dict(p=128, m=16, trials=3),
            "stability_under_loss": dict(p=32, m=8, w=16, horizon=600),
            "sensitivity_grid": dict(
                p_values=(64, 256), g_values=(2.0,), L_values=(4.0,), y_grid=400
            ),
            "pricing_ablation": dict(
                p=32, n=2000, schedule_m=8, m_values=(4, 8), L_values=(1.0, 4.0)
            ),
        }
        for name in list_experiments():
            out = run_experiment(name, **small_kwargs[name])
            json.dumps(out, default=float)

    def test_deterministic_under_seed(self):
        a = run_experiment("unbalanced_send", p=128, m=16, n=5000, trials=3, seed=7)
        b = run_experiment("unbalanced_send", p=128, m=16, n=5000, trials=3, seed=7)
        assert a == b


class TestExperimentShapes:
    def test_table1_separations(self):
        out = run_experiment("table1_measured", p=128, m=8, L=4.0)
        t = out["times"]["one_to_all"]
        assert t["bsp_g"] / t["bsp_m"] >= 0.8 * out["g"]

    def test_dynamic_threshold(self):
        out = run_experiment("dynamic_stability", p=64, m=8, w=64, horizon=8000)
        for row in out["sweep"]:
            if row["beta_times_g"] < 1.0:
                assert row["bsp_g"]["stable"]
            else:
                assert not row["bsp_g"]["stable"]
            assert row["algorithm_b"]["stable"]

    def test_self_scheduling_within_eps(self):
        out = run_experiment("self_scheduling", p=256, m=32, epsilon=0.2, trials=5)
        for wk in out["workloads"].values():
            assert wk["max_ratio"] <= 1.25


class TestCLIExperiment:
    def test_list_command(self, capsys):
        from repro.harness import main

        assert main(["experiment", "list"]) == 0
        out = capsys.readouterr().out
        assert "leader_gap" in out

    def test_json_output(self, tmp_path, capsys):
        from repro.harness import main

        path = tmp_path / "out.json"
        assert main(["experiment", "leader_gap", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["sweep"]

    def test_unknown_name_exits_nonzero_with_choices(self, capsys):
        from repro.harness import main

        assert main(["experiment", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "leader_gap" in err  # the choices list is printed

    def test_jobs_flag_accepted(self, capsys):
        from repro.harness import main

        assert main(["experiment", "leader_gap", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "jobs = 2" in out
