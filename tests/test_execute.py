"""Tests for the scheduler↔engine bridge (route / execute_schedule)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BSPg, BSPm, MachineParams, QSMm
from repro.scheduling import (
    delivery_counts,
    evaluate_schedule,
    execute_schedule,
    offline_optimal_schedule,
    route,
    unbalanced_consecutive_send,
    unbalanced_send,
)
from repro.workloads import uniform_random_relation, zipf_h_relation


class TestExecuteSchedule:
    def test_delivery_complete(self):
        rel = uniform_random_relation(32, 500, seed=0)
        sched = unbalanced_send(rel, m=8, epsilon=0.2, seed=1)
        mach = BSPm(MachineParams(p=32, m=8, L=1))
        res = execute_schedule(mach, sched)
        counts = delivery_counts(res, 32)
        assert np.array_equal(counts, rel.recv_sizes)

    def test_engine_cost_matches_evaluator(self):
        """The engine and the vectorized evaluator price the same schedule
        identically — the library's central consistency invariant."""
        rel = uniform_random_relation(64, 2000, seed=2)
        for m, eps, seed in [(8, 0.1, 3), (16, 0.3, 4), (64, 0.2, 5)]:
            sched = unbalanced_send(rel, m=m, epsilon=eps, seed=seed)
            rep = evaluate_schedule(sched, m=m, L=1.0)
            mach = BSPm(MachineParams(p=64, m=m, L=1.0))
            res = execute_schedule(mach, sched)
            assert res.time == pytest.approx(rep.superstep_cost), (m, eps)

    def test_offline_schedule_executes(self):
        rel = zipf_h_relation(32, 3000, alpha=1.3, seed=6)
        sched = offline_optimal_schedule(rel, m=8)
        mach = BSPm(MachineParams(p=32, m=8, L=1))
        res = execute_schedule(mach, sched)
        assert res.stat_max("overloaded_slots") == 0

    def test_rejects_qsm(self):
        rel = uniform_random_relation(8, 10, seed=7)
        sched = unbalanced_send(rel, m=4, epsilon=0.2, seed=8)
        with pytest.raises(ValueError, match="BSP"):
            execute_schedule(QSMm(MachineParams(p=8, m=4)), sched)

    def test_rejects_too_small_machine(self):
        rel = uniform_random_relation(16, 10, seed=9)
        sched = unbalanced_send(rel, m=4, epsilon=0.2, seed=10)
        with pytest.raises(ValueError, match="processors"):
            execute_schedule(BSPm(MachineParams(p=8, m=4)), sched)


class TestRoute:
    def test_route_on_global_machine(self):
        rel = zipf_h_relation(64, 5000, alpha=1.3, seed=11)
        mach = BSPm(MachineParams(p=64, m=16, L=2))
        res, sched = route(mach, rel, seed=12)
        assert sched.algorithm == "unbalanced-send"
        assert res.total_flits == rel.n

    def test_route_on_local_machine(self):
        rel = zipf_h_relation(64, 5000, alpha=1.3, seed=13)
        mach = BSPg(MachineParams(p=64, g=4.0, L=2))
        res, sched = route(mach, rel)
        assert sched.algorithm == "naive"  # no scheduling needed locally
        # Proposition 6.1: cost = max(g*h, L)
        assert res.time == max(4.0 * rel.h, 2.0)

    def test_route_custom_scheduler(self):
        rel = uniform_random_relation(32, 1000, seed=14)
        mach = BSPm(MachineParams(p=32, m=8, L=1))
        res, sched = route(mach, rel, scheduler=unbalanced_consecutive_send, seed=15)
        assert sched.algorithm == "unbalanced-consecutive-send"

    def test_route_separation_end_to_end(self):
        """The headline Θ(g) claim holds for fully engine-executed runs."""
        p, m = 128, 16
        g = p / m
        rel = zipf_h_relation(p, 10_000, alpha=1.4, seed=16)
        local, global_ = MachineParams.matched_pair(p=p, m=m, L=2)
        t_local = route(BSPg(local), rel)[0].time
        t_global = route(BSPm(global_), rel, seed=17)[0].time
        assert t_local / t_global >= 0.8 * g


@settings(max_examples=15, deadline=None)
@given(
    p=st.integers(2, 24),
    n=st.integers(0, 300),
    m=st.integers(1, 16),
    seed=st.integers(0, 10_000),
)
def test_property_execute_always_delivers(p, n, m, seed):
    rel = uniform_random_relation(p, n, seed=seed)
    sched = unbalanced_send(rel, m=m, epsilon=0.25, seed=seed)
    mach = BSPm(MachineParams(p=p, m=m, L=1))
    res = execute_schedule(mach, sched)
    assert int(delivery_counts(res, p).sum()) == rel.n
