"""Tests for the offline optimal / FFD / naive / grouped baselines."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    evaluate_schedule,
    grouped_schedule,
    naive_schedule,
    offline_consecutive_schedule,
    offline_lower_bound,
    offline_optimal_schedule,
)
from repro.util.intmath import ceil_div
from repro.workloads import (
    HRelation,
    one_to_all_relation,
    uniform_random_relation,
    variable_length_relation,
    zipf_h_relation,
)


class TestOfflineOptimal:
    def test_meets_lower_bound_exactly(self):
        rel = uniform_random_relation(64, 5000, seed=0)
        sched = offline_optimal_schedule(rel, m=16)
        sched.check_valid()
        assert sched.span == offline_lower_bound(rel, 16)

    def test_never_overloads(self):
        rel = zipf_h_relation(128, 20_000, alpha=1.3, seed=1)
        sched = offline_optimal_schedule(rel, m=32)
        rep = evaluate_schedule(sched, m=32)
        assert not rep.overloaded

    def test_x_bar_dominated(self):
        rel = one_to_all_relation(100)
        sched = offline_optimal_schedule(rel, m=50)
        assert sched.span == 99  # x̄ dominates ceil(99/50)

    def test_bandwidth_dominated(self):
        rel = uniform_random_relation(1000, 10_000, seed=2)
        sched = offline_optimal_schedule(rel, m=10)
        assert sched.span == offline_lower_bound(rel, 10) == 1000

    def test_empty(self):
        rel = HRelation(
            p=2,
            src=np.zeros(0, dtype=np.int64),
            dest=np.zeros(0, dtype=np.int64),
            length=np.zeros(0, dtype=np.int64),
        )
        assert offline_optimal_schedule(rel, 4).span == 0
        assert offline_lower_bound(rel, 4) == 0

    @settings(max_examples=40, deadline=None)
    @given(
        p=st.integers(1, 64),
        n=st.integers(0, 2000),
        m=st.integers(1, 64),
        seed=st.integers(0, 10_000),
    )
    def test_optimality_property(self, p, n, m, seed):
        """The constructive schedule always achieves max(ceil(n/m), x̄) —
        the exact offline optimum — and never exceeds bandwidth."""
        rel = uniform_random_relation(p, n, seed=seed)
        sched = offline_optimal_schedule(rel, m=m)
        sched.check_valid()
        bound = max(ceil_div(rel.n, m), rel.x_bar) if rel.n else 0
        assert sched.span == bound
        counts = sched.slot_counts()
        assert counts.size == 0 or counts.max() <= m


class TestOfflineConsecutive:
    def test_valid_and_consecutive(self):
        rel = variable_length_relation(32, 300, mean_length=5, seed=3)
        sched = offline_consecutive_schedule(rel, m=8)
        sched.check_valid(require_consecutive=True)

    def test_never_overloads(self):
        rel = variable_length_relation(32, 300, mean_length=5, seed=4)
        sched = offline_consecutive_schedule(rel, m=8)
        counts = sched.slot_counts()
        assert counts.max() <= 8

    def test_close_to_lower_bound(self):
        rel = variable_length_relation(64, 1000, mean_length=4, seed=5)
        sched = offline_consecutive_schedule(rel, m=16)
        lb = offline_lower_bound(rel, 16)
        assert sched.span <= lb + rel.max_length + 1

    def test_empty(self):
        rel = HRelation(
            p=2,
            src=np.zeros(0, dtype=np.int64),
            dest=np.zeros(0, dtype=np.int64),
            length=np.zeros(0, dtype=np.int64),
        )
        assert offline_consecutive_schedule(rel, 4).span == 0


class TestNaiveAndGrouped:
    def test_naive_overloads_heavily(self):
        rel = uniform_random_relation(256, 10_000, seed=6)
        rep = evaluate_schedule(naive_schedule(rel), m=16)
        assert rep.overloaded
        assert rep.max_slot_load > 16

    def test_naive_valid_per_processor(self):
        rel = uniform_random_relation(64, 1000, seed=7)
        naive_schedule(rel).check_valid(require_consecutive=False)

    def test_grouped_never_overloads(self):
        rel = zipf_h_relation(128, 20_000, alpha=1.2, seed=8)
        sched = grouped_schedule(rel, m=16)
        sched.check_valid()
        counts = sched.slot_counts()
        assert counts.max() <= 16

    def test_grouped_pays_g_x_bar(self):
        """The grouped schedule is the locally-limited emulation: span is
        ceil(p/m)·x̄ up to the heavy sender's group offset."""
        rel = one_to_all_relation(64)
        sched = grouped_schedule(rel, m=8)
        groups = 8
        assert sched.span >= groups * (rel.x_bar - 1) + 1
        assert sched.span <= groups * rel.x_bar

    def test_grouped_vs_optimal_ratio_is_theta_g(self):
        rel = one_to_all_relation(256)
        m = 32
        g = 256 // m
        grouped = evaluate_schedule(grouped_schedule(rel, m), m=m)
        optimal = evaluate_schedule(offline_optimal_schedule(rel, m), m=m)
        ratio = grouped.comm_time / optimal.comm_time
        assert g * 0.9 <= ratio <= g * 1.1
