"""Tests for list ranking (Table 1 row 4): Wyllie, contraction, oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BSPg, BSPm, MachineParams, QSMm
from repro.algorithms import (
    list_ranking_contraction,
    list_ranking_wyllie,
    random_list,
    sequential_ranks,
)


class TestOracle:
    def test_simple_chain(self):
        # 0 -> 1 -> 2 -> nil
        ranks = sequential_ranks([1, 2, -1])
        assert ranks.tolist() == [2, 1, 0]

    def test_reversed_chain(self):
        ranks = sequential_ranks([-1, 0, 1])
        assert ranks.tolist() == [0, 1, 2]

    def test_single(self):
        assert sequential_ranks([-1]).tolist() == [0]

    def test_empty(self):
        assert sequential_ranks([]).size == 0

    def test_cycle_detected(self):
        with pytest.raises(ValueError):
            sequential_ranks([1, 0])

    def test_forest_detected(self):
        with pytest.raises(ValueError):
            sequential_ranks([-1, -1])

    def test_random_list_is_single_list(self):
        succ = random_list(50, seed=0)
        ranks = sequential_ranks(succ)
        assert sorted(ranks.tolist()) == list(range(50))


class TestWyllie:
    @pytest.mark.parametrize("p", [1, 2, 3, 16, 63, 64])
    def test_correct_on_bsp(self, p):
        succ = random_list(p, seed=p)
        oracle = sequential_ranks(succ)
        mach = BSPm(MachineParams(p=p, m=max(1, p // 4), L=2))
        res, ranks = list_ranking_wyllie(mach, succ)
        assert np.array_equal(ranks, oracle)

    def test_correct_on_all_models(self, all_machines):
        p = 64
        succ = random_list(p, seed=9)
        oracle = sequential_ranks(succ)
        for name, mach in all_machines.items():
            mach.shared_memory.clear()
            res, ranks = list_ranking_wyllie(mach, succ)
            assert np.array_equal(ranks, oracle), name

    def test_requires_one_node_per_proc(self):
        mach = BSPm(MachineParams(p=8, m=2))
        with pytest.raises(ValueError):
            list_ranking_wyllie(mach, random_list(4, seed=1))

    def test_ordered_chain(self):
        p = 32
        succ = np.arange(1, p + 1)
        succ[-1] = -1
        mach = BSPg(MachineParams(p=p, g=2.0, L=1))
        res, ranks = list_ranking_wyllie(mach, succ)
        assert ranks.tolist() == list(range(p - 1, -1, -1))


class TestContraction:
    @pytest.mark.parametrize("p", [1, 2, 3, 16, 63, 128])
    def test_correct(self, p):
        succ = random_list(p, seed=p + 100)
        oracle = sequential_ranks(succ)
        mach = BSPm(MachineParams(p=p, m=max(1, p // 4), L=2))
        res, ranks = list_ranking_contraction(mach, succ, seed=5)
        assert np.array_equal(ranks, oracle)

    def test_correct_on_bspg(self):
        p = 64
        succ = random_list(p, seed=3)
        mach = BSPg(MachineParams(p=p, g=4.0, L=2))
        res, ranks = list_ranking_contraction(mach, succ, seed=6)
        assert np.array_equal(ranks, sequential_ranks(succ))

    def test_deterministic_under_seed(self):
        p = 32
        succ = random_list(p, seed=4)
        mach = BSPm(MachineParams(p=p, m=8, L=1))
        _, a = list_ranking_contraction(mach, succ, seed=7)
        _, b = list_ranking_contraction(BSPm(MachineParams(p=p, m=8, L=1)), succ, seed=7)
        assert np.array_equal(a, b)

    def test_rejects_qsm(self):
        mach = QSMm(MachineParams(p=8, m=2))
        with pytest.raises(ValueError):
            list_ranking_contraction(mach, random_list(8, seed=1))

    def test_insufficient_rounds_detected(self):
        p = 64
        succ = random_list(p, seed=8)
        mach = BSPm(MachineParams(p=p, m=8, L=1))
        with pytest.raises(RuntimeError):
            list_ranking_contraction(mach, succ, seed=9, max_rounds=1)

    def test_message_volume_is_linear(self):
        """Work-efficiency: total flits O(n), unlike Wyllie's Θ(n lg n)."""
        p = 128
        succ = random_list(p, seed=10)
        mach = BSPm(MachineParams(p=p, m=16, L=1))
        res, _ = list_ranking_contraction(mach, succ, seed=11)
        mach2 = BSPm(MachineParams(p=p, m=16, L=1))
        res_w, _ = list_ranking_wyllie(mach2, succ)
        assert res.total_flits < res_w.total_flits
        assert res.total_flits <= 8 * p  # c·n for a small constant


@settings(max_examples=15, deadline=None)
@given(p=st.integers(2, 48), seed=st.integers(0, 10_000))
def test_both_algorithms_agree(p, seed):
    succ = random_list(p, seed=seed)
    oracle = sequential_ranks(succ)
    mach = BSPm(MachineParams(p=p, m=max(1, p // 3), L=1))
    _, wyllie = list_ranking_wyllie(mach, succ)
    mach2 = BSPm(MachineParams(p=p, m=max(1, p // 3), L=1))
    _, contr = list_ranking_contraction(mach2, succ, seed=seed)
    assert np.array_equal(wyllie, oracle)
    assert np.array_equal(contr, oracle)
