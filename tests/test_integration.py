"""End-to-end integration tests: the paper's headline claims exercised
across module boundaries (workloads → schedulers → evaluation → engine)."""

import numpy as np
import pytest

from repro import BSPm, LINEAR, MachineParams, QSMg, QSMm
from repro.algorithms import broadcast, summation
from repro.scheduling import (
    bsp_g_routing_time,
    evaluate_schedule,
    grouped_schedule,
    naive_schedule,
    offline_optimal_schedule,
    sum_and_broadcast,
    tau_bound,
    unbalanced_send,
)
from repro.theory.chernoff import window_overload_probability
from repro.workloads import (
    balanced_h_relation,
    one_to_all_relation,
    uniform_random_relation,
    zipf_h_relation,
)


class TestHeadlineSeparation:
    """'Globally-limited models have a possible advantage whenever there is
    an imbalance in the number of messages sent/received.'"""

    def test_balanced_workload_no_advantage(self):
        """With balanced h-relations the two models tie (up to (1+eps))."""
        p, m = 256, 32
        g = p / m
        rel = balanced_h_relation(p, h=16, seed=0)
        bspg = bsp_g_routing_time(rel, g=g)
        rep = evaluate_schedule(unbalanced_send(rel, m, 0.2, seed=1), m=m)
        ratio = bspg / rep.completion_time
        # g*(x̄+ȳ)... vs n/m = p*h/m = g*h: ratio ≈ 2 (send+recv), not g
        assert ratio <= 3.0

    def test_skewed_workload_theta_g_advantage(self):
        p, m = 256, 32
        g = p / m
        rel = one_to_all_relation(p)
        bspg = bsp_g_routing_time(rel, g=g)
        rep = evaluate_schedule(unbalanced_send(rel, m, 0.2, seed=2), m=m)
        assert bspg / rep.completion_time >= 0.9 * g

    def test_crossover_at_h_equals_g_n_over_p(self):
        """The advantage kicks in exactly where the paper says:
        ``h >= g·n/p``."""
        from repro.workloads import two_class_relation

        p, m = 256, 32
        g = p / m
        ratios = {}
        for heavy in (4, 64):
            rel = two_class_relation(p, 0.02, heavy, light_count=2, seed=3)
            bspg = bsp_g_routing_time(rel, g=g)
            opt = evaluate_schedule(offline_optimal_schedule(rel, m), m=m)
            ratios[heavy] = bspg / opt.completion_time
        # below the crossover the advantage is a small constant (receive
        # skew only); past it the ratio approaches g
        assert ratios[4] < 0.6 * g
        assert ratios[64] == pytest.approx(g, rel=0.05)


class TestSchedulerVsEngine:
    """The schedule-level evaluator and the engine agree on costs."""

    def test_engine_run_matches_schedule_report(self):
        p, m = 32, 8
        rel = uniform_random_relation(p, 200, seed=4)
        sched = unbalanced_send(rel, m, 0.25, seed=5)
        rep = evaluate_schedule(sched, m=m, L=1.0)

        # replay the same schedule on the BSPm engine
        slots_of = [[] for _ in range(p)]
        flit_src = sched.flit_src
        for k in range(rel.n):
            slots_of[flit_src[k]].append(int(sched.flit_slots[k]))
        dests = np.repeat(rel.dest, rel.length)
        dests_of = [[] for _ in range(p)]
        for k in range(rel.n):
            dests_of[flit_src[k]].append(int(dests[k]))

        def prog(ctx, my_slots, my_dests):
            for s, d in zip(my_slots, my_dests):
                ctx.send(d, None, slot=s)
            yield

        mach = BSPm(MachineParams(p=p, m=m, L=1.0))
        res = mach.run(
            prog, per_proc_args=[(slots_of[i], dests_of[i]) for i in range(p)]
        )
        assert res.time == pytest.approx(rep.superstep_cost)

    def test_tau_measured_vs_bound(self):
        params = MachineParams(p=512, m=32, L=8)
        res, totals = sum_and_broadcast(BSPm(params), [1.0] * 512)
        assert res.time <= 2 * tau_bound(params)
        assert totals[0] == 512.0


class TestOverloadProbability:
    def test_empirical_matches_chernoff_direction(self):
        """Measured overload frequency is below the union-bound prediction
        and decreases with m."""
        n = 20_000
        rates = {}
        for m in (32, 128):
            rel = uniform_random_relation(512, n, seed=6)
            fails = 0
            trials = 30
            for seed in range(trials):
                rep = evaluate_schedule(
                    unbalanced_send(rel, m, 0.3, seed=seed), m=m
                )
                fails += rep.overloaded
            rates[m] = fails / trials
        assert rates[128] <= rates[32]
        assert rates[128] <= max(0.2, window_overload_probability(n, 128, 0.3))


class TestFourModelConsistency:
    def test_same_answers_everywhere(self, all_machines):
        values = [float(i) for i in range(64)]
        answers = {}
        for name, mach in all_machines.items():
            mach.shared_memory.clear()
            _, total = summation(mach, values)
            answers[name] = total
        assert len(set(answers.values())) == 1

    def test_qsm_g_emulates_on_qsm_m_within_bound(self):
        """Section 4's claim: any QSM(g) algorithm runs on the QSM(m) with
        the same time bound — here: broadcast written for the g-machine,
        executed on the m-machine with staggering, never slower than the
        g-model run."""
        local, global_ = MachineParams.matched_pair(p=128, m=16, L=4)
        t_g = broadcast(QSMg(local), 1).time
        t_m = broadcast(QSMm(global_), 1).time
        assert t_m <= t_g

    def test_linear_penalty_never_exceeds_exponential(self):
        rel = zipf_h_relation(128, 5000, alpha=1.1, seed=7)
        sched = naive_schedule(rel)
        lin = evaluate_schedule(sched, m=8, penalty=LINEAR)
        exp = evaluate_schedule(sched, m=8)
        assert lin.comm_time <= exp.comm_time

    def test_grouped_schedule_realizes_emulation_cost(self):
        """grouped_schedule's cost equals the BSP(g) routing charge up to
        rounding — the executable form of the grouping emulation."""
        p, m = 128, 16
        g = p / m
        rel = zipf_h_relation(p, 5000, alpha=1.3, seed=8)
        rep = evaluate_schedule(grouped_schedule(rel, m), m=m)
        assert rep.comm_time <= g * rel.x_bar
        assert rep.comm_time >= g * (rel.x_bar - 1)
