"""End-to-end tests of the ``repro serve`` daemon: wire protocol,
admission control, and the determinism contract (served ≡ direct library
call — cold cache, warm cache, and after a seeded crash retry)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    ChaosPlan,
    ExecutorConfig,
    ReproServer,
    Request,
    ServeClient,
    ServeError,
    ServeRequestError,
    estimate_cost,
    request_fingerprint,
)
from repro.serve.executor import run_scenario
from repro.store.disk import DiskStore

SCENARIO = {"p": 16, "n": 1500, "m": 64, "L": 2.0, "workload": "zipf"}


def make_server(tmp_path=None, **kw):
    store = None
    if tmp_path is not None:
        store = DiskStore(str(tmp_path / "store"), tag="test")
    kw.setdefault("executor", ExecutorConfig(workers=2, backoff_base=0.01))
    server = ReproServer(port=0, store=store, **kw)
    server.start()
    return server, ServeClient(server.url, timeout=60)


@pytest.fixture
def served(tmp_path):
    server, client = make_server(tmp_path)
    yield server, client
    server.drain(timeout=30)


# ----------------------------------------------------------------------
# protocol units
# ----------------------------------------------------------------------
class TestProtocol:
    def test_fingerprint_is_order_independent(self):
        a = request_fingerprint("scenario", {"p": 4, "n": 100}, 7)
        b = request_fingerprint("scenario", {"n": 100, "p": 4}, 7)
        assert a == b

    def test_fingerprint_covers_seed_and_kind(self):
        base = request_fingerprint("scenario", {"p": 4}, 7)
        assert request_fingerprint("scenario", {"p": 4}, 8) != base
        assert request_fingerprint("sweep", {"p": 4}, 7) != base

    def test_estimate_cost_shapes(self):
        assert estimate_cost("ping", {}) == 1
        assert estimate_cost("scenario", {"n": 500}) == 500
        assert estimate_cost("sweep", {"n": 100, "trials": 5}) == 500

    def test_serve_error_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            ServeError("E_MADE_UP", "nope")


# ----------------------------------------------------------------------
# admission units
# ----------------------------------------------------------------------
def _req(seq, cost, deadline=None):
    return Request(
        seq=seq, kind="scenario", params={}, seed=0,
        fingerprint=f"f{seq}", cost=cost, deadline=deadline, submitted=0.0,
    )


class TestAdmission:
    def test_oversized_shed(self):
        ctl = AdmissionController(AdmissionConfig(budget_m=10, oversized_factor=2))
        with pytest.raises(ServeError) as exc:
            ctl.submit(_req(1, cost=21))
        assert exc.value.code == "E_OVERSIZED"
        assert ctl.submit(_req(2, cost=20)) == 1  # at the ceiling: admitted

    def test_queue_full_shed(self):
        ctl = AdmissionController(AdmissionConfig(max_queue=2))
        ctl.submit(_req(1, 5))
        ctl.submit(_req(2, 5))
        with pytest.raises(ServeError) as exc:
            ctl.submit(_req(3, 5))
        assert exc.value.code == "E_QUEUE_FULL"

    def test_draining_shed(self):
        ctl = AdmissionController(AdmissionConfig())
        ctl.start_drain()
        with pytest.raises(ServeError) as exc:
            ctl.submit(_req(1, 5))
        assert exc.value.code == "E_DRAINING"

    def test_round_draw_is_seeded(self):
        def one_round(seed):
            ctl = AdmissionController(AdmissionConfig(budget_m=8, seed=seed))
            for i in range(6):
                ctl.submit(_req(i, cost=10 + i))
            rnd = ctl.next_round(timeout=1)
            return rnd.window, [r.seq for _, r in rnd.order]

        assert one_round(3) == one_round(3)  # same seed, same schedule

    def test_window_and_oversized_rule(self):
        ctl = AdmissionController(
            AdmissionConfig(budget_m=10, epsilon=0.0, oversized_factor=100)
        )
        ctl.submit(_req(1, cost=95))  # bigger than the window -> slot 0
        ctl.submit(_req(2, cost=5))
        rnd = ctl.next_round(timeout=1)
        assert rnd.window == 10  # ceil((95 + 5) / 10)
        slot_of = {r.seq: s for s, r in rnd.order}
        assert slot_of[1] == 0  # the paper's oversized-sender rule

    def test_next_round_timeout_returns_none(self):
        ctl = AdmissionController(AdmissionConfig())
        assert ctl.next_round(timeout=0.01) is None


# ----------------------------------------------------------------------
# the determinism contract (acceptance criterion)
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_cold_warm_and_retry_match_direct_call(self, tmp_path):
        """One daemon-served scenario must equal the direct library call
        bit-for-bit: cold cache, warm cache, and recomputed after a seeded
        worker crash on the first attempt."""
        direct = run_scenario(SCENARIO, 42)

        server, client = make_server(tmp_path)
        try:
            cold = client.submit("scenario", SCENARIO, seed=42)
            warm = client.submit("scenario", SCENARIO, seed=42)
        finally:
            server.drain(timeout=30)
        assert cold["cached"] is False and warm["cached"] is True
        assert cold["result"] == direct
        assert warm["result"] == direct

        # a fresh daemon whose chaos plan kills every first attempt: the
        # retry must recompute the identical answer (no cache: no store)
        server2, client2 = make_server(None, chaos=ChaosPlan(kill_first=1))
        try:
            retried = client2.submit("scenario", SCENARIO, seed=42)
        finally:
            server2.drain(timeout=30)
        assert retried["attempts"] == 2
        assert retried["result"] == direct

    def test_warm_cache_survives_daemon_restart(self, tmp_path):
        server, client = make_server(tmp_path)
        try:
            cold = client.submit("scenario", SCENARIO, seed=9)
        finally:
            server.drain(timeout=30)
        server2, client2 = make_server(tmp_path)
        try:
            warm = client2.submit("scenario", SCENARIO, seed=9)
        finally:
            server2.drain(timeout=30)
        assert warm["cached"] is True
        assert warm["result"] == cold["result"]

    def test_experiment_kind_matches_library(self, served):
        server, client = served
        from repro.experiments import run_experiment

        params = {"name": "unbalanced_send", "p": 16, "m": 8, "n": 800,
                  "trials": 2}
        got = client.submit("experiment", params, seed=5)
        want = run_experiment(
            "unbalanced_send", p=16, m=8, n=800, trials=2, seed=5
        )
        assert got["result"]["result"] == want


# ----------------------------------------------------------------------
# structured sheds over the wire
# ----------------------------------------------------------------------
class TestSheds:
    def test_expired_deadline_is_504(self, served):
        server, client = served
        with pytest.raises(ServeRequestError) as exc:
            client.submit("scenario", SCENARIO, seed=1, deadline_s=-0.5)
        assert exc.value.code == "E_DEADLINE"
        assert exc.value.http_status == 504

    def test_oversized_is_413(self, served):
        server, client = served
        with pytest.raises(ServeRequestError) as exc:
            client.submit("sweep", {"name": "unbalanced_send", "n": 10**9,
                                    "trials": 1000})
        assert exc.value.code == "E_OVERSIZED"
        assert exc.value.http_status == 413

    def test_bad_kind_and_bad_experiment_are_400(self, served):
        server, client = served
        with pytest.raises(ServeRequestError) as exc:
            client.submit("frobnicate", {})
        assert exc.value.code == "E_BAD_REQUEST"
        with pytest.raises(ServeRequestError) as exc:
            client.submit("experiment", {"name": "no_such_experiment"})
        assert exc.value.code == "E_BAD_REQUEST"
        assert "choices" in exc.value.extra

    def test_unknown_path_is_400(self, served):
        server, client = served
        with pytest.raises(ServeRequestError) as exc:
            client._call("GET", "/v1/nope")
        assert exc.value.code == "E_BAD_REQUEST"


# ----------------------------------------------------------------------
# daemon surface
# ----------------------------------------------------------------------
class TestDaemon:
    def test_ping_health_metrics_stats(self, served):
        server, client = served
        assert client.ping()["result"]["kind"] == "ping"
        health = client.healthz()
        assert health["status"] == "serving"
        client.submit("scenario", SCENARIO, seed=2)
        metrics = client.metrics()
        assert metrics["counters"]["serve.requests.ok"] >= 2
        stats = client.stats()
        assert stats["admission"]["budget_m"] == 4096
        assert stats["store"]["writes"] >= 1

    def test_drain_endpoint_sheds_then_stops(self, tmp_path):
        server, client = make_server(tmp_path)
        client.drain()
        deadline = time.monotonic() + 10
        while not server._drained.is_set() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert server._drained.is_set()
        with pytest.raises(Exception):  # listener is gone
            client.healthz()

    def test_concurrent_submissions_all_answered(self, served):
        """Every accepted request gets exactly one answer even when many
        clients race; sheds are structured, never hangs."""
        server, client = served
        outcomes = []
        lock = threading.Lock()

        def go(i):
            try:
                r = client.submit("scenario", dict(SCENARIO, p=8, n=400),
                                  seed=100 + i)
                with lock:
                    outcomes.append(("ok", r["result"]["model_time"]))
            except ServeRequestError as e:
                with lock:
                    outcomes.append((e.code, None))

        threads = [threading.Thread(target=go, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(outcomes) == 8
        assert all(code == "ok" for code, _ in outcomes)


# ----------------------------------------------------------------------
# streaming telemetry: Prometheus exposition, event long-poll, repro top
# ----------------------------------------------------------------------
class TestStreamingTelemetry:
    def test_prometheus_exposition(self, served):
        server, client = served
        client.ping()
        status, headers, raw = client._call_raw("GET", "/v1/metrics?format=prom")
        assert status == 200
        assert headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"
        assert int(headers["Content-Length"]) == len(raw)
        text = raw.decode()
        assert any(
            line.startswith("serve_requests_ok_total ")
            for line in text.splitlines()
        )
        assert "# TYPE serve_requests_ok_total counter" in text
        assert client.metrics_prom() == text  # the client helper agrees

    def test_json_replies_carry_charset_and_length(self, served):
        server, client = served
        for path in ("/v1/healthz", "/v1/metrics", "/v1/stats"):
            status, headers, raw = client._call_raw("GET", path)
            assert status == 200, path
            assert headers["Content-Type"] == "application/json; charset=utf-8"
            assert int(headers["Content-Length"]) == len(raw)

    def test_unknown_format_is_structured_406(self, served):
        server, client = served
        with pytest.raises(ServeRequestError) as exc:
            client._call_raw("GET", "/v1/metrics?format=xml")
        assert exc.value.code == "E_NOT_ACCEPTABLE"
        assert exc.value.http_status == 406
        assert exc.value.extra["supported"] == ["json", "prom"]

    def test_events_long_poll_sees_admission_rounds(self, served):
        server, client = served
        # subscribe first, then submit: the poll must wake on the round
        got = {}

        def poll():
            got["events"], got["seq"] = client.events(since=0, timeout=30.0)

        t = threading.Thread(target=poll)
        t.start()
        client.submit("scenario", dict(SCENARIO, p=8, n=400), seed=5)
        t.join(timeout=60)
        assert not t.is_alive()
        rounds = [e for e in got["events"] if e["kind"] == "round"]
        assert rounds, got
        assert {"seq", "t", "window", "requests", "queue_depth"} <= set(rounds[0])
        assert got["seq"] >= rounds[-1]["seq"]
        # cursor semantics: nothing new -> empty batch, cursor preserved
        events, seq = client.events(since=got["seq"], timeout=0.2)
        assert events == [] and seq == got["seq"]

    def test_event_ring_is_bounded(self):
        from repro.serve.telemetry import EVENT_RING_SIZE, ServerMetrics

        metrics = ServerMetrics()
        for i in range(EVENT_RING_SIZE + 10):
            metrics.emit_event("round", window=i)
        events, latest = metrics.wait_events(0, timeout=0.0)
        assert len(events) == EVENT_RING_SIZE
        assert latest == EVENT_RING_SIZE + 10
        # the oldest events fell off the ring
        assert events[0]["seq"] == 11

    def test_top_against_live_chaos_daemon(self, tmp_path):
        """The acceptance criterion: ``repro top`` attaches to a chaos-plan
        daemon, renders, and perturbs nothing — the served results stay
        bit-identical to the direct library call."""
        from repro.obs.top import DaemonSource, render_frame

        server, client = make_server(
            tmp_path, chaos=ChaosPlan(seed=3, kill_first=1)
        )
        try:
            source = DaemonSource(ServeClient(server.url, timeout=60))
            frame0 = source.frame()
            assert frame0["status"] == "serving"
            got = client.submit("scenario", SCENARIO, seed=21)
            frame = source.frame()
            text = "\n".join(render_frame(frame))
            assert "repro top" in text and "serving" in text
            assert frame["counters"]["serve.requests.ok"] >= 1
            # top is read-only: the daemon's answer matches the library
            want = run_scenario(SCENARIO, 21)
            assert got["result"] == _json_roundtrip(want)
        finally:
            server.drain(timeout=30)


# ----------------------------------------------------------------------
# process engine + UDS transport
# ----------------------------------------------------------------------
class TestProcessEngine:
    def test_engine_validated(self):
        with pytest.raises(ValueError, match="engine"):
            ExecutorConfig(engine="fiber")

    def test_process_served_scenario_is_bit_identical(self, tmp_path):
        server, client = make_server(
            tmp_path, executor=ExecutorConfig(workers=2, engine="process")
        )
        try:
            got = client.submit("scenario", SCENARIO, seed=11)
            want = run_scenario(SCENARIO, 11)
            assert got["result"] == _json_roundtrip(want)
            # warm-cache answer is the same object the cold run produced
            again = client.submit("scenario", SCENARIO, seed=11)
            assert again["cached"] is True
            assert again["result"] == got["result"]
        finally:
            server.drain(timeout=30)

    def test_process_engine_translates_structured_errors(self, tmp_path):
        server, client = make_server(
            tmp_path, executor=ExecutorConfig(workers=2, engine="process")
        )
        try:
            with pytest.raises(ServeRequestError) as exc:
                client.submit("experiment", {"name": "no_such_experiment"})
            assert exc.value.code == "E_BAD_REQUEST"
            assert "choices" in exc.value.extra
        finally:
            server.drain(timeout=30)

    def test_process_engine_ships_real_worker_spans(self, tmp_path):
        """With a tracer installed in the daemon process, a process-engine
        request splices the worker's *real* superstep spans under a
        ``serve <kind>`` span — model durations included."""
        from repro.obs import Tracer, tracing

        server, client = make_server(
            tmp_path, executor=ExecutorConfig(workers=2, engine="process")
        )
        tracer = Tracer()
        try:
            with tracing(tracer):
                got = client.submit("scenario", SCENARIO, seed=31)
        finally:
            server.drain(timeout=30)
        (serve_span,) = tracer.find(cat="serve")
        assert serve_span.name == "serve scenario"
        supersteps = tracer.find(cat="superstep")
        assert supersteps, "worker superstep spans did not arrive"
        assert sum(s.model_dur for s in supersteps) == got["result"]["model_time"]
        # the worker's top-level spans hang off the serve span
        roots = [
            s for s in tracer.spans
            if s.parent == serve_span.index and s is not serve_span
        ]
        assert roots

    def test_process_engine_crash_quarantines(self, tmp_path):
        """A handler that keeps crashing inside a pool worker walks the
        same retry -> quarantine path as the thread engine."""
        server, client = make_server(
            tmp_path,
            executor=ExecutorConfig(
                workers=2, engine="process", backoff_base=0.01,
                max_attempts=2, quarantine_after=2,
            ),
        )
        try:
            bad = {"p": 16, "n": 800, "m": 0}  # m=0 raises in MachineParams
            with pytest.raises(ServeRequestError) as exc:
                client.submit("scenario", bad, seed=0)
            assert exc.value.code == "E_CRASHED"
            with pytest.raises(ServeRequestError) as exc:
                client.submit("scenario", bad, seed=0)
            assert exc.value.code == "E_QUARANTINED"
        finally:
            server.drain(timeout=30)


def _json_roundtrip(obj):
    import json

    return json.loads(json.dumps(obj))


class TestUnixDomainSocket:
    def _serve_uds(self, tmp_path, **kw):
        sock = str(tmp_path / "repro.sock")
        kw.setdefault("executor", ExecutorConfig(workers=2, backoff_base=0.01))
        server = ReproServer(uds=sock, **kw)
        server.start()
        return server, ServeClient(uds=sock, timeout=60), sock

    def test_round_trip_matches_tcp(self, tmp_path):
        server, client, sock = self._serve_uds(tmp_path)
        tcp_server, tcp_client = make_server()
        try:
            assert server.url == f"http+unix://{sock}"
            assert client.healthz()["ok"] is True
            got = client.submit("scenario", SCENARIO, seed=3)
            want = tcp_client.submit("scenario", SCENARIO, seed=3)
            assert got["result"] == want["result"]
            assert got["fingerprint"] == want["fingerprint"]
        finally:
            server.drain(timeout=30)
            tcp_server.drain(timeout=30)

    def test_structured_errors_cross_the_socket(self, tmp_path):
        server, client, _ = self._serve_uds(tmp_path)
        try:
            with pytest.raises(ServeRequestError) as exc:
                client.submit("experiment", {"name": "nope"})
            assert exc.value.code == "E_BAD_REQUEST"
            assert exc.value.http_status == 400
        finally:
            server.drain(timeout=30)

    def test_socket_file_removed_on_close(self, tmp_path):
        import os

        server, client, sock = self._serve_uds(tmp_path)
        assert os.path.exists(sock)
        server.drain(timeout=30)
        assert not os.path.exists(sock)

    def test_stale_socket_file_is_replaced(self, tmp_path):
        sock = str(tmp_path / "repro.sock")
        open(sock, "w").close()  # stale leftover from a crashed daemon
        server = ReproServer(uds=sock)
        server.start()
        try:
            assert ServeClient(uds=sock).healthz()["ok"] is True
        finally:
            server.drain(timeout=30)

    def test_client_requires_exactly_one_transport(self):
        with pytest.raises(ValueError, match="exactly one"):
            ServeClient()
        with pytest.raises(ValueError, match="exactly one"):
            ServeClient("http://x", uds="/tmp/x.sock")
