"""Tests for the executable bounds, separations and Chernoff machinery."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.theory import (
    TABLE1,
    chernoff_upper_tail,
    completion_tail_probability,
    min_m_for_failure_probability,
    render_table1,
    slot_overload_probability,
    table1_rows,
    window_overload_probability,
)
from repro.theory import bounds as B
from repro.theory.separations import (
    separation_broadcast_qsm,
    separation_one_to_all,
    separation_parity_qsm,
)


class TestTable1Registry:
    def test_all_twenty_cells_present(self):
        problems = {"one_to_all", "broadcast", "parity", "list_ranking", "sorting"}
        models = {"qsm_m", "qsm_g", "bsp_m", "bsp_g"}
        assert set(TABLE1) == {(pr, mo) for pr in problems for mo in models}

    def test_cells_evaluate_positive(self):
        for key, fn in TABLE1.items():
            val = fn(1024, 1024, 16.0, 64, 8.0)
            assert val > 0, key

    def test_global_cells_beat_local_cells(self):
        """For n = p and "suitable values of L and g" (the paper's phrase —
        the latency term of the m-model upper bounds must not swamp the
        g-model lower bounds), every globally-limited bound is below its
        locally-limited counterpart."""
        p = n = 2**16
        m = 2**12
        g = p / m
        L = 4.0
        for problem in ("one_to_all", "broadcast", "parity", "list_ranking", "sorting"):
            for fam in ("qsm", "bsp"):
                strong = TABLE1[(problem, f"{fam}_m")](p, n, g, m, L)
                weak = TABLE1[(problem, f"{fam}_g")](p, n, g, m, L)
                assert strong < weak, (problem, fam)


class TestBoundShapes:
    def test_one_to_all_separation_is_g(self):
        assert B.one_to_all_qsm_g(100, 8.0) / B.one_to_all_qsm_m(100, 8) == 8.0

    def test_broadcast_lower_below_upper(self):
        for p in (64, 1024, 2**16):
            for L in (2.0, 16.0):
                for g in (1.0, 2.0, 4.0):
                    lower = B.broadcast_bsp_g_lower(p, g, L)
                    upper = B.broadcast_bsp_g(p, g, L)
                    assert lower <= 3 * upper + 1e-9, (p, L, g)

    def test_broadcast_bsp_m_terms(self):
        # p/m term dominates for big p
        assert B.broadcast_bsp_m(2**20, 16, 4.0) > 2**20 / 16

    def test_parity_monotone_in_n(self):
        vals = [B.parity_qsm_m(n, 64) for n in (2**10, 2**12, 2**14)]
        assert vals == sorted(vals)

    def test_sorting_theta_n_over_m(self):
        assert B.sorting_qsm_m(2**20, 2**10) == 2**10

    def test_unbalanced_routing_bounds(self):
        assert B.unbalanced_routing_bsp_g(10, 5, 4.0, 2.0) == 62.0
        assert B.unbalanced_routing_bsp_m(1000, 10, 5, 100, 2.0) == 10.0
        assert B.unbalanced_routing_bsp_m(10_000, 10, 5, 100, 2.0, epsilon=0.1) == 110.0

    def test_tau(self):
        assert B.tau_prefix_broadcast(1024, 64, 4.0) > 1024 / 64

    def test_leader_bounds(self):
        assert B.leader_recognition_pramm(2**16, 64) == 1.0
        assert B.leader_recognition_pramm(2**200, 8) > 1.0
        low = B.leader_recognition_qsm_m_lower(2**16, 64, 64)
        assert low > 0

    def test_er_cr_separation_grows(self):
        a = B.er_cr_pramm_separation(2**12, 16)
        b = B.er_cr_pramm_separation(2**16, 16)
        assert b > a

    def test_thm52_lower_below_upper(self):
        for p in (2**10, 2**16):
            for m in (4, 64):
                for w in (8, 64):
                    assert B.crcw_pramm_on_qsm_m_lower(p, m, w) <= B.crcw_pramm_on_qsm_m_upper(p, m) + 1e-9


class TestSeparations:
    def test_one_to_all(self):
        assert separation_one_to_all(16.0) == 16.0

    def test_broadcast_qsm(self):
        assert separation_broadcast_qsm(2**16, 16.0) == pytest.approx(4.0)

    def test_parity_grows_slowly(self):
        assert separation_parity_qsm(2**16) == pytest.approx(4.0)
        assert separation_parity_qsm(2**64) > separation_parity_qsm(2**16)

    def test_table1_rows_structure(self):
        rows = table1_rows(p=1024, L=8.0, m=64)
        assert len(rows) == 10
        problems = {r.problem for r in rows}
        assert len(problems) == 5
        for r in rows:
            assert r.strong_bound > 0 and r.weak_bound > 0
            assert r.separation >= 1.0

    def test_render_table1(self):
        out = render_table1(p=1024, L=8.0, m=64)
        assert "One-to-all" in out and "Sorting" in out
        assert "g = 16" in out


class TestChernoff:
    def test_upper_tail_below_one(self):
        assert chernoff_upper_tail(10.0, 20.0) < 1.0

    def test_upper_tail_trivial_when_below_mean(self):
        assert chernoff_upper_tail(10.0, 5.0) == 1.0

    def test_upper_tail_decreasing_in_threshold(self):
        vals = [chernoff_upper_tail(10.0, t) for t in (15, 20, 30, 50)]
        assert vals == sorted(vals, reverse=True)

    def test_slot_overload_shape(self):
        # exp(-eps^2 m / 3)
        assert slot_overload_probability(1000, 300, 0.3) == pytest.approx(
            math.exp(-0.09 * 300 / 3)
        )

    def test_window_union_bound(self):
        single = slot_overload_probability(10_000, 100, 0.2)
        window = window_overload_probability(10_000, 100, 0.2)
        assert window >= single
        assert window <= 1.0

    def test_tail_decays_in_k(self):
        vals = [completion_tail_probability(k, 10_000, 400, 0.2) for k in (1, 2, 4, 8)]
        assert vals == sorted(vals, reverse=True)

    def test_tail_is_one_below_k1(self):
        assert completion_tail_probability(0.5, 100, 10, 0.1) == 1.0

    def test_min_m_sizing(self):
        m = min_m_for_failure_probability(100_000, 0.2, 1e-6)
        assert window_overload_probability(100_000, m, 0.2) <= 1e-6
        assert window_overload_probability(100_000, max(1, m // 2), 0.2) > 1e-6

    @given(st.integers(10, 10**6), st.integers(1, 10**4))
    def test_probabilities_in_range(self, n, m):
        for eps in (0.1, 0.5, 0.99):
            assert 0 <= slot_overload_probability(n, m, eps) <= 1
            assert 0 <= window_overload_probability(n, m, eps) <= 1


class TestChernoffVsMeasurement:
    """The Theorem 6.2 analysis predicts per-slot load tails; measure them."""

    def test_slot_load_tail_below_exact_chernoff(self):
        """Empirical P[slot load >= threshold] for Unbalanced-Send slots is
        below the exact multiplicative Chernoff value at every threshold."""
        import numpy as np

        from repro.scheduling import unbalanced_send
        from repro.workloads import uniform_random_relation

        p, n, m, eps = 512, 40_000, 64, 0.25
        rel = uniform_random_relation(p, n, seed=42)
        loads = []
        for seed in range(10):
            sched = unbalanced_send(rel, m, eps, seed=seed)
            loads.append(sched.slot_counts())
        loads = np.concatenate(loads).astype(float)
        mu = n / ((1 + eps) * n / m)  # expected slot load m/(1+eps)
        for threshold in (mu * 1.3, mu * 1.5, mu * 1.8):
            measured = float(np.mean(loads >= threshold))
            predicted = chernoff_upper_tail(mu, threshold)
            assert measured <= predicted * 3 + 0.02, threshold

    def test_window_bound_is_conservative(self):
        """The union-bounded window probability upper-bounds the measured
        overload frequency (it is a bound, not an estimate)."""
        from repro.scheduling import evaluate_schedule, unbalanced_send
        from repro.workloads import uniform_random_relation

        n, m, eps = 40_000, 128, 0.3
        rel = uniform_random_relation(512, n, seed=43)
        fails = sum(
            evaluate_schedule(unbalanced_send(rel, m, eps, seed=s), m=m).overloaded
            for s in range(20)
        )
        measured = fails / 20
        assert measured <= max(0.15, window_overload_probability(n, m, eps))
