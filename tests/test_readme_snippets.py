"""Executable-documentation tests: the README's Python snippets must run.

Keeps the front-page examples honest — if an API referenced by the README
changes, this file fails before a user hits it.
"""

import re
from pathlib import Path


README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.S)


class TestReadme:
    def test_readme_exists_with_snippets(self):
        blocks = python_blocks()
        assert len(blocks) >= 2

    def test_quickstart_block_runs(self):
        blocks = python_blocks()
        quickstart = next(b for b in blocks if "matched_pair" in b)
        exec(compile(quickstart, str(README), "exec"), {})

    def test_engine_block_runs(self):
        blocks = python_blocks()
        engine_block = next(b for b in blocks if "broadcast_ring" in b)
        # the README elides the program body with "..." — make it runnable
        runnable = engine_block.replace("    ...", "    yield\n    return None")
        exec(compile(runnable, str(README), "exec"), {})

    def test_reproduction_table_mentions_every_theorem(self):
        text = README.read_text()
        for marker in ("Theorem 6.2", "Theorem 6.4", "Theorem 6.5", "Theorem 6.7"):
            assert marker in text


class TestDocsCrossReferences:
    def test_docs_files_exist(self):
        docs = README.parent / "docs"
        for name in ("models.md", "scheduling.md", "dynamic.md", "algorithms.md", "performance.md"):
            assert (docs / name).exists(), name

    def test_design_lists_every_benchmark(self):
        design = (README.parent / "DESIGN.md").read_text()
        bench_dir = README.parent / "benchmarks"
        for bench in bench_dir.glob("bench_*.py"):
            assert bench.name in design or bench.stem in design, bench.name

    def test_experiments_covers_table1_rows(self):
        exp = (README.parent / "EXPERIMENTS.md").read_text()
        for tag in ("T1.1", "T1.2", "T1.3", "T1.4", "T1.5", "E6.1", "E6.5", "E5.1"):
            assert tag in exp, tag
