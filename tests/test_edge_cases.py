"""Edge-case and failure-injection tests across subsystems."""

import numpy as np
import pytest

from repro import BSPg, BSPm, MachineParams, Message, ProgramError, QSMg, QSMm
from repro.core.events import CostBreakdown
from repro.scheduling import (
    evaluate_schedule,
    offline_optimal_schedule,
    send_window,
    unbalanced_send,
)
from repro.workloads import HRelation, uniform_random_relation


class TestMessageValidation:
    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Message(src=0, dest=1, size=0)

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            Message(src=0, dest=1, slot=-1)

    def test_defaults(self):
        msg = Message(src=0, dest=1)
        assert msg.size == 1 and msg.slot is None and msg.consecutive


class TestCostBreakdown:
    def test_total_is_max(self):
        b = CostBreakdown(work=3, local_band=7, global_band=5, latency=1, contention=2)
        assert b.total() == 7

    def test_dominant_names_the_max(self):
        b = CostBreakdown(work=3, global_band=9)
        assert b.dominant() == "global_band"

    def test_dominant_tie_prefers_declaration_order(self):
        b = CostBreakdown(work=5, latency=5)
        assert b.dominant() == "work"

    def test_empty(self):
        assert CostBreakdown().total() == 0.0


class TestEngineEdges:
    def test_zero_message_program_on_every_machine(self):
        def prog(ctx):
            yield

        for mach in (
            BSPg(MachineParams(p=2, g=2.0, L=3.0)),
            BSPm(MachineParams(p=2, m=1, L=3.0)),
        ):
            res = mach.run(prog)
            assert res.time == 3.0  # barrier still costs L

        for mach in (QSMg(MachineParams(p=2, g=2.0)), QSMm(MachineParams(p=2, m=1))):
            res = mach.run(prog)
            assert res.time == 2.0 if mach.params.m is None else res.time >= 1.0

    def test_single_processor_machine(self):
        def prog(ctx):
            ctx.work(5)
            yield
            return "done"

        res = BSPm(MachineParams(p=1, m=1)).run(prog)
        assert res.results == ["done"] and res.time == 5.0

    def test_self_send(self):
        def prog(ctx):
            ctx.send(ctx.pid, "loop")
            yield
            return [m.payload for m in ctx.receive()]

        res = BSPg(MachineParams(p=2, g=2.0)).run(prog)
        assert res.results == [["loop"], ["loop"]]

    def test_qsm_read_of_unwritten_location_is_none(self):
        def prog(ctx):
            h = ctx.read(("nowhere", ctx.pid))
            yield
            return h.value

        res = QSMg(MachineParams(p=2, g=1.0)).run(prog)
        assert res.results == [None, None]

    def test_messages_to_inactive_processors(self):
        """With nprocs < p, sends outside the active prefix are programmer
        errors caught at send time."""

        def prog(ctx):
            ctx.send(ctx.nprocs, "beyond")
            yield

        mach = BSPg(MachineParams(p=8, g=1.0))
        with pytest.raises(ProgramError):
            mach.run(prog, nprocs=4)

    def test_generator_exception_propagates(self):
        def prog(ctx):
            yield
            raise RuntimeError("inner failure")

        with pytest.raises(RuntimeError, match="inner failure"):
            BSPg(MachineParams(p=2, g=1.0)).run(prog)

    def test_shared_memory_persists_across_runs(self):
        mach = QSMg(MachineParams(p=2, g=1.0))

        def writer(ctx):
            if ctx.pid == 0:
                ctx.write("persist", 99)
            yield

        def reader(ctx):
            h = ctx.read("persist") if ctx.pid == 1 else None
            yield
            return h.value if h else None

        mach.run(writer)
        res = mach.run(reader)
        assert res.results[1] == 99


class TestSchedulingEdges:
    def test_empty_relation_everywhere(self):
        rel = HRelation(
            p=4,
            src=np.zeros(0, dtype=np.int64),
            dest=np.zeros(0, dtype=np.int64),
            length=np.zeros(0, dtype=np.int64),
        )
        sched = unbalanced_send(rel, m=2, epsilon=0.5, seed=0)
        rep = evaluate_schedule(sched, m=2)
        assert rep.completion_time == 0.0
        assert rep.ratio == 1.0

    def test_single_message(self):
        rel = HRelation(
            p=2, src=np.array([0]), dest=np.array([1]), length=np.array([1])
        )
        sched = unbalanced_send(rel, m=1, epsilon=0.5, seed=1)
        sched.check_valid()
        rep = evaluate_schedule(sched, m=1)
        assert rep.completion_time >= 1.0

    def test_m_larger_than_n(self):
        rel = uniform_random_relation(16, 5, seed=2)
        sched = unbalanced_send(rel, m=1000, epsilon=0.5, seed=3)
        rep = evaluate_schedule(sched, m=1000)
        assert not rep.overloaded

    def test_window_of_tiny_n(self):
        assert send_window(1, 1000, 0.1) == 1

    def test_m_one(self):
        """m = 1 serializes everything: optimal span = n."""
        rel = uniform_random_relation(8, 50, seed=4)
        sched = offline_optimal_schedule(rel, m=1)
        assert sched.span == rel.n

    def test_all_messages_same_pair(self):
        rel = HRelation(
            p=4,
            src=np.zeros(20, dtype=np.int64),
            dest=np.full(20, 3, dtype=np.int64),
            length=np.ones(20, dtype=np.int64),
        )
        sched = unbalanced_send(rel, m=4, epsilon=0.5, seed=5)
        sched.check_valid()
        rep = evaluate_schedule(sched, m=4)
        assert rep.completion_time == 20.0  # x̄ = ȳ = n


class TestParamEdges:
    def test_word_bits_positive(self):
        with pytest.raises(ValueError):
            MachineParams(p=2, word_bits=0)

    def test_g_exactly_one_allowed(self):
        MachineParams(p=2, g=1.0)

    def test_m_one_allowed(self):
        MachineParams(p=2, m=1)
