"""Engine semantics: supersteps, delivery, read handles, model rules."""

import pytest

from repro import BSPg, BSPm, MachineParams, ModelViolation, ProgramError, QSMg
from repro.core.engine import ReadHandle


def make_bspg(p=4, g=2.0, L=1.0):
    return BSPg(MachineParams(p=p, g=g, L=L))


def make_bspm(p=4, m=2, L=1.0):
    return BSPm(MachineParams(p=p, m=m, L=L))


class TestSuperstepStructure:
    def test_single_yield_program(self):
        def prog(ctx):
            ctx.send((ctx.pid + 1) % ctx.nprocs, ctx.pid)
            yield
            return [m.payload for m in ctx.receive()]

        res = make_bspg().run(prog)
        assert res.supersteps >= 1
        assert res.results == [[3], [0], [1], [2]]

    def test_plain_function_program(self):
        def prog(ctx):
            ctx.work(2.0)
            return ctx.pid * 10

        res = make_bspg().run(prog)
        assert res.results == [0, 10, 20, 30]
        assert res.supersteps == 1
        assert res.records[0].work == [2.0] * 4

    def test_trailing_empty_superstep_not_charged(self):
        def prog(ctx):
            ctx.send(0, "x")
            yield
            return None  # no ops after the last yield

        res = make_bspg().run(prog)
        assert res.supersteps == 1

    def test_ops_after_last_yield_are_charged(self):
        def prog(ctx):
            yield
            ctx.work(5.0)
            return None

        res = make_bspg().run(prog)
        assert res.supersteps == 2
        assert res.records[1].work == [5.0] * 4

    def test_uneven_completion(self):
        def prog(ctx):
            for _ in range(ctx.pid + 1):
                yield
            return ctx.pid

        res = make_bspg().run(prog)
        assert res.results == [0, 1, 2, 3]

    def test_max_supersteps_guard(self):
        def forever(ctx):
            while True:
                ctx.work(1)
                yield

        with pytest.raises(ProgramError, match="exceeded"):
            make_bspg().run(forever, max_supersteps=10)

    def test_time_is_sum_of_superstep_costs(self):
        def prog(ctx):
            ctx.work(10)
            yield
            ctx.work(20)
            yield
            return None

        res = make_bspg().run(prog)
        assert res.time == sum(r.cost for r in res.records) == 30

    def test_nprocs_subset(self):
        def prog(ctx):
            return ctx.nprocs

        res = make_bspg().run(prog, nprocs=2)
        assert res.results == [2, 2]

    def test_bad_nprocs(self):
        with pytest.raises(ValueError):
            make_bspg().run(lambda ctx: None, nprocs=99)

    def test_per_proc_args_length_checked(self):
        with pytest.raises(ValueError):
            make_bspg().run(lambda ctx, v: v, per_proc_args=[(1,)])


class TestMessaging:
    def test_inbox_cleared_between_supersteps(self):
        def prog(ctx):
            if ctx.pid == 0:
                ctx.send(1, "a")
            yield
            first = [m.payload for m in ctx.receive()]
            yield
            second = [m.payload for m in ctx.receive()]
            return (first, second)

        res = make_bspg().run(prog)
        assert res.results[1] == (["a"], [])

    def test_send_out_of_range(self):
        def prog(ctx):
            ctx.send(99, "x")
            yield

        with pytest.raises(ProgramError, match="out of range"):
            make_bspg().run(prog)

    def test_negative_work_rejected(self):
        def prog(ctx):
            ctx.work(-1)
            yield

        with pytest.raises(ProgramError):
            make_bspg().run(prog)

    def test_multi_flit_message_counts_in_h(self):
        def prog(ctx):
            if ctx.pid == 0:
                ctx.send(1, "big", size=5)
            yield

        res = make_bspg().run(prog)
        assert res.records[0].stats["h"] == 5.0

    def test_read_on_bsp_machine_rejected(self):
        def prog(ctx):
            ctx.read("x")
            yield

        with pytest.raises(ProgramError, match="message-passing"):
            make_bspg().run(prog)


class TestSlotRules:
    def test_same_slot_double_injection_violates_on_bspm(self):
        def prog(ctx):
            if ctx.pid == 0:
                ctx.send(1, "a", slot=0)
                ctx.send(2, "b", slot=0)
            yield

        with pytest.raises(ModelViolation, match="two flits"):
            make_bspm().run(prog)

    def test_same_slot_fine_on_bspg(self):
        def prog(ctx):
            if ctx.pid == 0:
                ctx.send(1, "a", slot=0)
                ctx.send(2, "b", slot=0)
            yield

        make_bspg().run(prog)  # locally-limited machines ignore slots

    def test_consecutive_flits_conflict_detected(self):
        def prog(ctx):
            if ctx.pid == 0:
                ctx.send(1, "a", size=3, slot=0)
                ctx.send(2, "b", slot=2)
            yield

        with pytest.raises(ModelViolation):
            make_bspm().run(prog)

    def test_auto_slots_never_conflict(self):
        def prog(ctx):
            for d in range(ctx.nprocs):
                if d != ctx.pid:
                    ctx.send(d, "x")
            yield

        make_bspm().run(prog)

    def test_stagger_slot_bounds_load(self):
        def prog(ctx):
            ctx.send((ctx.pid + 1) % ctx.nprocs, "x", slot=ctx.stagger_slot())
            yield

        mach = make_bspm(p=8, m=2)
        res = mach.run(prog)
        assert res.records[0].stats["max_slot_load"] <= 2

    def test_stagger_slot_none_on_local_machine(self):
        def prog(ctx):
            assert ctx.stagger_slot() is None
            yield

        make_bspg().run(prog)


class TestReadHandle:
    def test_unresolved_access_raises(self):
        h = ReadHandle("addr")
        assert not h.resolved
        with pytest.raises(ProgramError, match="not yet resolved"):
            _ = h.value

    def test_premature_read_in_program(self):
        def prog(ctx):
            h = ctx.read("x")
            _ = h.value  # before the barrier: illegal
            yield

        machine = QSMg(MachineParams(p=2, g=2.0))
        with pytest.raises(ProgramError):
            machine.run(prog)

    def test_read_sees_pre_step_value_on_crcw(self):
        """Read-then-write step semantics: a step's reads see memory from
        before that step's writes.  (QSM forbids mixed access to one
        location in a phase, so this is exercised on the CRCW PRAM, where
        mixed access is the norm.)"""
        from repro.models.pram import PRAM, ConcurrencyRule

        def prog(ctx):
            if ctx.pid == 0:
                ctx.write("cell", "new")
            h = None
            if ctx.pid == 1:
                h = ctx.read("cell")
            yield
            return h.value if h else None

        machine = PRAM(MachineParams(p=2), rule=ConcurrencyRule.CRCW)
        machine.shared_memory["cell"] = "old"
        res = machine.run(prog)
        assert res.results[1] == "old"
        assert machine.shared_memory["cell"] == "new"


class TestQSMRules:
    def test_mixed_read_write_same_location_violates(self):
        def prog(ctx):
            if ctx.pid == 0:
                ctx.write("x", 1)
            else:
                ctx.read("x")
            yield

        with pytest.raises(ModelViolation, match="both read and written"):
            QSMg(MachineParams(p=2, g=2.0)).run(prog)

    def test_concurrent_writes_arbitrary_resolution(self):
        def prog(ctx):
            ctx.write("x", ctx.pid)
            yield

        machine = QSMg(MachineParams(p=4, g=2.0))
        machine.run(prog)
        assert machine.shared_memory["x"] in (0, 1, 2, 3)

    def test_contention_priced(self):
        def prog(ctx):
            ctx.write(("w", ctx.pid), 1)
            yield
            ctx.read(("w", 0))  # everyone reads one location
            yield

        machine = QSMg(MachineParams(p=8, g=1.0))
        res = machine.run(prog)
        assert res.records[1].stats["kappa"] == 8.0
        assert res.records[1].cost >= 8.0

    def test_send_on_qsm_rejected(self):
        def prog(ctx):
            yield  # make it a generator before the error path
            ctx.send(0, "x")
            yield

        with pytest.raises(ProgramError, match="shared"):
            # QSM procs cannot send point-to-point... message goes through
            # the shared-memory API instead
            QSMg(MachineParams(p=2, g=2.0)).run(prog)


class TestRunResultHelpers:
    def test_stat_sum_and_max(self):
        def prog(ctx):
            ctx.send((ctx.pid + 1) % ctx.nprocs, "x")
            yield
            ctx.send((ctx.pid + 2) % ctx.nprocs, "y")
            ctx.send((ctx.pid + 3) % ctx.nprocs, "z")
            yield
            return None

        res = make_bspg().run(prog)
        assert res.total_messages == 12
        assert res.stat_max("h") == 2.0
        assert res.stat_sum("n") == 12.0

    def test_dominant_components(self):
        def prog(ctx):
            ctx.work(100)
            yield

        res = make_bspg().run(prog)
        assert res.dominant_components() == {"work": 100.0}
