"""Tests for the PRAM reference algorithms, trace extraction, and the
end-to-end §4 emulation pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    pram_prefix_sums,
    pram_wyllie_ranks,
    random_list,
    sequential_ranks,
    simulate_trace_on_qsm_m,
    trace_from_run,
)
from repro.theory.bounds import parity_qsm_m


class TestPramPrefixSums:
    @pytest.mark.parametrize("p", [1, 2, 3, 8, 13, 64])
    def test_correct(self, p):
        values = [float(i * i) for i in range(p)]
        res, out = pram_prefix_sums(values)
        assert out == [sum(values[: i + 1]) for i in range(p)]

    def test_erew_discipline_holds(self):
        """The EREW machine raises on any concurrent access, so a clean run
        certifies the algorithm's exclusivity."""
        res, _ = pram_prefix_sums([1.0] * 32)
        assert res.time >= 1

    def test_logarithmic_time(self):
        t64 = pram_prefix_sums([1.0] * 64)[0].time
        t1024 = pram_prefix_sums([1.0] * 1024)[0].time
        # 4x rounds when p goes 64 -> 1024 would be lg ratio 10/6
        assert t1024 <= 2.2 * t64

    def test_linear_work(self):
        res, _ = pram_prefix_sums([1.0] * 256)
        tr = trace_from_run(res)
        assert tr.w <= 6 * 256  # O(n) shared-memory operations

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pram_prefix_sums([])


class TestPramWyllie:
    @pytest.mark.parametrize("p", [1, 2, 5, 32, 100])
    def test_correct(self, p):
        succ = random_list(p, seed=p)
        res, ranks = pram_wyllie_ranks(succ)
        assert np.array_equal(ranks, sequential_ranks(succ))

    def test_superlinear_work(self):
        """Wyllie is Θ(n lg n) work — the reason the Table-1 algorithms
        exist."""
        res, _ = pram_wyllie_ranks(random_list(256, seed=0))
        tr = trace_from_run(res)
        assert tr.w >= 2 * 256  # clearly more than one op per node

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pram_wyllie_ranks([])


class TestEndToEndEmulation:
    def test_measured_prefix_trace_maps_within_bound(self):
        """Run the real EREW algorithm, extract its measured trace, map it
        onto the QSM(m), and check the §4 formula holds."""
        p = 512
        res, _ = pram_prefix_sums([1.0] * p)
        tr = trace_from_run(res)
        for m in (4, 32, 256):
            measured, bound = simulate_trace_on_qsm_m(tr, m)
            assert measured <= 2 * bound + 2, m

    def test_emulated_prefix_close_to_direct_qsm_m_algorithm(self):
        """The generic emulation of the EREW prefix algorithm lands within
        a small constant of the direct Table-1 QSM(m) summation bound."""
        p, m = 1024, 64
        res, _ = pram_prefix_sums([1.0] * p)
        tr = trace_from_run(res)
        measured, _ = simulate_trace_on_qsm_m(tr, m)
        direct_bound = parity_qsm_m(p, m)
        assert measured <= 8 * direct_bound

    def test_wyllie_emulation_pays_the_lg_factor(self):
        """Mapping Wyllie (w = Θ(n lg n)) is strictly worse than mapping
        the work-optimal prefix algorithm — the quantitative reason the
        paper's Table-1 list ranking uses a work-efficient algorithm."""
        p, m = 512, 16
        t_prefix = simulate_trace_on_qsm_m(
            trace_from_run(pram_prefix_sums([1.0] * p)[0]), m
        )[0]
        t_wyllie = simulate_trace_on_qsm_m(
            trace_from_run(pram_wyllie_ranks(random_list(p, seed=1))[0]), m
        )[0]
        assert t_wyllie > 2 * t_prefix


@settings(max_examples=10, deadline=None)
@given(p=st.integers(2, 64), seed=st.integers(0, 1000))
def test_property_pram_wyllie_matches_oracle(p, seed):
    succ = random_list(p, seed=seed)
    _, ranks = pram_wyllie_ranks(succ)
    assert np.array_equal(ranks, sequential_ranks(succ))
