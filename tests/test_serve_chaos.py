"""Deterministic chaos tests of the daemon: seeded worker kills, bounded
queue overload, disk-full on the store, slow-client stalls, and graceful
drain — the ISSUE's robustness criteria.

No pytest-timeout dependency is assumed: every blocking step has its own
timeout (client sockets, ``Thread.join``, drain) and asserts progress, so
a deadlock shows up as a failed assertion, not a hung test run.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.serve import (
    AdmissionConfig,
    ChaosPlan,
    ExecutorConfig,
    ReproServer,
    ServeClient,
    ServeRequestError,
)
from repro.serve.chaos import WorkerKilled, plan_from_env
from repro.store.disk import DiskStore

SCENARIO = {"p": 8, "n": 400, "m": 32}
JOIN_S = 60  # nothing below is allowed to outlive this


def start_server(**kw):
    kw.setdefault("executor", ExecutorConfig(workers=2, backoff_base=0.005))
    server = ReproServer(port=0, **kw)
    server.start()
    return server, ServeClient(server.url, timeout=JOIN_S)


class TestChaosPlan:
    def test_decisions_are_pure(self):
        plan = ChaosPlan(seed=7, kill_rate=0.5)
        fps = [f"fp{i}" for i in range(200)]
        first = [plan.should_kill(fp, 1) for fp in fps]
        assert first == [plan.should_kill(fp, 1) for fp in fps]
        killed = sum(first)
        assert 50 < killed < 150  # seeded, roughly the configured rate

    def test_kill_first_always_kills_then_releases(self):
        plan = ChaosPlan(seed=0, kill_first=1)
        assert plan.should_kill("anything", 1)
        assert not plan.should_kill("anything", 2)
        with pytest.raises(WorkerKilled):
            plan.kill_if_planned("anything", 1)

    def test_null_plan(self):
        assert ChaosPlan().is_null
        assert not ChaosPlan(kill_rate=0.1).is_null

    def test_plan_from_env(self):
        plan = plan_from_env({
            "REPRO_SERVE_CHAOS_SEED": "3",
            "REPRO_SERVE_CHAOS_KILL_RATE": "0.25",
            "REPRO_SERVE_CHAOS_KILL_FIRST": "1",
        })
        assert (plan.seed, plan.kill_rate, plan.kill_first) == (3, 0.25, 1)
        assert plan_from_env({}).is_null


class TestSeededKills:
    def test_kills_recover_and_results_are_deterministic(self):
        """Under a 100%-first-attempt kill plan every request succeeds on
        the retry with the same bits a calm server produces."""
        calm_server, calm = start_server()
        try:
            want = calm.submit("scenario", SCENARIO, seed=11)["result"]
        finally:
            calm_server.drain(timeout=30)

        server, client = start_server(chaos=ChaosPlan(kill_first=1))
        try:
            got = client.submit("scenario", SCENARIO, seed=11)
        finally:
            server.drain(timeout=30)
        assert got["attempts"] == 2
        assert got["result"] == want

    def test_poison_request_is_quarantined(self):
        server, client = start_server(
            chaos=ChaosPlan(kill_rate=1.0),
            executor=ExecutorConfig(
                workers=1, max_attempts=2, quarantine_after=2,
                backoff_base=0.005,
            ),
        )
        try:
            with pytest.raises(ServeRequestError) as exc:
                client.submit("scenario", SCENARIO, seed=13)
            assert exc.value.code == "E_CRASHED"
            assert exc.value.extra.get("quarantined") is True
            # same content again: shed at the door, no execution
            with pytest.raises(ServeRequestError) as exc:
                client.submit("scenario", SCENARIO, seed=13)
            assert exc.value.code == "E_QUARANTINED"
            assert exc.value.http_status == 422
            # different content still serves (chaos kills it too, but the
            # point is it is NOT quarantined up front)
            with pytest.raises(ServeRequestError) as exc:
                client.submit("scenario", SCENARIO, seed=14)
            assert exc.value.code == "E_CRASHED"
            metrics = client.metrics()["counters"]
            assert metrics["serve.retry.quarantined"] >= 1
            assert metrics["serve.worker.crashes"] >= 3
        finally:
            server.drain(timeout=30)


class TestOverload:
    def test_bounded_queue_sheds_structured_and_never_hangs(self):
        server, client = start_server(
            admission=AdmissionConfig(max_queue=2, max_batch=1),
            executor=ExecutorConfig(workers=1, backoff_base=0.005),
        )
        outcomes = []
        lock = threading.Lock()

        def go(i):
            try:
                client.submit("scenario", dict(SCENARIO, n=4000), seed=i)
                with lock:
                    outcomes.append("ok")
            except ServeRequestError as e:
                with lock:
                    outcomes.append(e.code)

        threads = [threading.Thread(target=go, args=(i,)) for i in range(10)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=JOIN_S)
            assert not any(t.is_alive() for t in threads), "a client hung"
            assert len(outcomes) == 10  # every submission was answered
            assert set(outcomes) <= {"ok", "E_QUEUE_FULL"}
            assert outcomes.count("ok") >= 1
            if "E_QUEUE_FULL" in outcomes:
                shed = client.metrics()["counters"]["serve.shed.queue_full"]
                assert shed == outcomes.count("E_QUEUE_FULL")
        finally:
            server.drain(timeout=30)


class TestDiskFull:
    def test_full_disk_degrades_store_not_service(self, tmp_path):
        plan = ChaosPlan(disk_full_rate=1.0)
        store = DiskStore(
            str(tmp_path / "s"), tag="t", io_fault=plan.io_fault
        )
        server, client = start_server(store=store, chaos=plan)
        try:
            first = client.submit("scenario", SCENARIO, seed=21)
            again = client.submit("scenario", SCENARIO, seed=21)
        finally:
            server.drain(timeout=30)
        # no write landed, so the repeat recomputes — but bit-identically
        assert first["cached"] is False and again["cached"] is False
        assert first["result"] == again["result"]
        assert store.stats().write_errors >= 2
        assert store.stats().entries == 0


class TestSlowClient:
    def test_stalled_request_does_not_block_other_clients(self):
        server, client = start_server(request_timeout=1.0)
        try:
            host, port = server.address
            stalled = socket.create_connection((host, port), timeout=5)
            # half a request, then silence: the handler must time out
            # instead of pinning its thread forever
            stalled.sendall(b"POST /v1/submit HTTP/1.1\r\nContent-Length: 999\r\n")
            t0 = time.monotonic()
            assert client.ping()["ok"]  # others keep being served
            assert time.monotonic() - t0 < 30
            stalled.close()
        finally:
            server.drain(timeout=30)


class TestGracefulDrain:
    def test_drain_answers_all_accepted_sheds_new_work(self):
        """The zero-loss guarantee: drain during load answers every
        accepted request, sheds post-drain submissions with E_DRAINING,
        and stops cleanly."""
        server, client = start_server(
            admission=AdmissionConfig(max_queue=32, max_batch=2),
            executor=ExecutorConfig(workers=2, backoff_base=0.005),
        )
        outcomes = []
        lock = threading.Lock()

        def go(i):
            try:
                r = client.submit("scenario", dict(SCENARIO, n=2000), seed=i)
                with lock:
                    outcomes.append(("ok", r["result"]["model_time"]))
            except ServeRequestError as e:
                with lock:
                    outcomes.append((e.code, None))

        threads = [threading.Thread(target=go, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        # let some requests get accepted, then pull the plug
        time.sleep(0.2)
        drainer = threading.Thread(target=server.drain, kwargs={"timeout": JOIN_S})
        drainer.start()
        # a submission racing the drain must shed, not hang
        late_code = None
        try:
            client.submit("scenario", SCENARIO, seed=999)
            late_code = "ok"
        except ServeRequestError as e:
            late_code = e.code
        except Exception:
            late_code = "connection_error"  # listener already closed
        for t in threads:
            t.join(timeout=JOIN_S)
        drainer.join(timeout=JOIN_S)
        assert not drainer.is_alive(), "drain deadlocked"
        assert not any(t.is_alive() for t in threads), "a client hung"
        assert server._drained.is_set()
        # every accepted request got a real answer; nothing was dropped
        assert len(outcomes) == 6
        assert set(c for c, _ in outcomes) <= {"ok", "E_DRAINING"}
        assert any(c == "ok" for c, _ in outcomes)
        assert late_code in ("ok", "E_DRAINING", "connection_error")

    def test_drain_is_idempotent(self):
        server, _client = start_server()
        assert server.drain(timeout=10)
        assert server.drain(timeout=10)  # second call is a no-op
