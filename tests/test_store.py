"""Crash-safety and recovery tests of the persistent disk store
(:mod:`repro.store`) and its integration with the sweep memo cache."""

from __future__ import annotations

import errno
import os
import pickle

import pytest

from repro.store import (
    DiskStore,
    configure_persistent_cache,
    default_store_tag,
    disable_persistent_cache,
    maybe_enable_from_env,
    persistent_cache_scope,
    summarize_store,
    wipe_store,
)
from repro.store.disk import (
    _ENTRIES_DIR,
    _SUFFIX,
    _TMP_PREFIX,
    _encode_entry,
    _key_digest,
)


@pytest.fixture
def store(tmp_path):
    return DiskStore(str(tmp_path / "store"), tag="test-tag")


class TestDiskStoreBasics:
    def test_round_trip(self, store):
        key = ("fingerprint", 64, 2.0)
        assert store.get(key) == (False, None)
        assert store.put(key, {"time": 12.5, "slots": [1, 2, 3]})
        hit, value = store.get(key)
        assert hit and value == {"time": 12.5, "slots": [1, 2, 3]}

    def test_stats_counters(self, store):
        store.get(("miss",))
        store.put(("k",), 1)
        store.get(("k",))
        st = store.stats()
        assert (st.hits, st.misses, st.writes) == (1, 1, 1)
        assert st.entries == 1 and st.bytes > 0
        assert 0 < st.hit_rate < 1

    def test_unpicklable_value_is_write_error(self, store):
        assert not store.put(("k",), lambda: None)  # lambdas don't pickle
        assert store.stats().write_errors == 1
        assert store.get(("k",)) == (False, None)

    def test_eviction_oldest_first(self, tmp_path):
        s = DiskStore(str(tmp_path / "s"), max_entries=3, tag="t")
        for i in range(5):
            s.put(("k", i), i)
            os.utime(s._entry_path(("k", i)), (i, i))  # force distinct mtimes
        s.put(("k", 5), 5)
        st = s.stats()
        assert st.entries == 3
        assert st.evictions >= 2
        # the newest keys survive
        assert s.contains(("k", 5))
        assert not s.contains(("k", 0))

    def test_clear_and_wipe(self, store, tmp_path):
        store.put(("a",), 1)
        assert store.clear() == 1
        assert store.stats().entries == 0
        store.put(("b",), 2)
        assert wipe_store(store.root) == 1
        # wipe refuses to touch a non-store directory with content
        other = tmp_path / "not-a-store"
        other.mkdir()
        (other / "precious.txt").write_text("data")
        with pytest.raises(OSError) as exc:
            wipe_store(str(other))
        assert exc.value.errno == errno.ENOTEMPTY


class TestCrashRecovery:
    """The ISSUE's crash-recovery criteria: a kill mid-write leaves the
    store loadable with the partial entry simply absent; a hand-corrupted
    entry reads as a miss (and the recompute is bit-identical), never an
    exception."""

    def test_partial_write_is_invisible_and_swept(self, tmp_path):
        root = str(tmp_path / "s")
        s = DiskStore(root, tag="t")
        s.put(("survivor",), 42)
        # simulate a writer killed mid-write: a temp file exists, the
        # atomic rename never happened
        blob = _encode_entry(("victim",), 99)
        tmp_name = f"{_TMP_PREFIX}{_key_digest(('victim',))}{_SUFFIX}.12345"
        tmp_file = os.path.join(s.entries_dir, tmp_name)
        with open(tmp_file, "wb") as fh:
            fh.write(blob[: len(blob) // 2])  # half the bytes, then "killed"

        # a fresh open (daemon restart) must load cleanly, keep the
        # published entry, miss the victim, and sweep the orphan
        s2 = DiskStore(root, tag="t")
        assert s2.get(("survivor",)) == (True, 42)
        assert s2.get(("victim",)) == (False, None)
        assert not os.path.exists(tmp_file)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda b: b[: len(b) // 2],  # truncation
            lambda b: b.replace(b"REPRO-STORE", b"BOGUS-STORE", 1),  # bad magic
            lambda b: b[:-4] + bytes(4),  # flipped payload bytes
            lambda b: b"",  # empty file
        ],
        ids=["truncated", "bad-magic", "bit-flip", "empty"],
    )
    def test_corrupt_entry_is_miss_with_bit_identical_recompute(
        self, store, mutate
    ):
        key = ("fp", 16)
        value = {"report": [1.0, 2.0, 3.0], "time": 7.25}
        store.put(key, value)
        path = store._entry_path(key)
        original = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(mutate(original))

        hit, got = store.get(key)
        assert not hit and got is None
        assert store.stats().corrupt_dropped <= 1  # empty file may parse as ""
        assert not os.path.exists(path)  # dropped so the rewrite starts clean

        # the recompute path: writing the same value again yields a hit
        # with a bit-identical payload
        store.put(key, value)
        assert store.get(key) == (True, value)
        assert open(path, "rb").read() == original

    def test_digest_collision_degrades_to_miss(self, store):
        key = ("real", 1)
        store.put(key, "value")
        # forge a different key into the file slot the real key hashes to
        path = store._entry_path(key)
        with open(path, "wb") as fh:
            fh.write(_encode_entry(("impostor", 2), "other"))
        assert store.get(key) == (False, None)

    def test_io_fault_on_write_degrades_to_passthrough(self, tmp_path):
        def enospc(op, path):
            if op == "put":
                raise OSError(errno.ENOSPC, "disk full")

        s = DiskStore(str(tmp_path / "s"), tag="t", io_fault=enospc)
        assert not s.put(("k",), 1)
        st = s.stats()
        assert st.write_errors == 1 and st.entries == 0
        # no temp-file litter from the failed write
        assert not [
            n for n in os.listdir(s.entries_dir) if n.startswith(_TMP_PREFIX)
        ]


class TestInvalidation:
    def test_tag_mismatch_wipes_on_open(self, tmp_path):
        root = str(tmp_path / "s")
        s1 = DiskStore(root, tag="v1+abc")
        s1.put(("k",), 1)
        s2 = DiskStore(root, tag="v1+def")  # a different tree
        assert s2.get(("k",)) == (False, None)
        assert s2.stats().invalidated == 1

    def test_same_tag_preserves_entries(self, tmp_path):
        root = str(tmp_path / "s")
        DiskStore(root, tag="same").put(("k",), "v")
        assert DiskStore(root, tag="same").get(("k",)) == (True, "v")

    def test_default_tag_carries_schema_and_sha(self):
        tag = default_store_tag()
        assert tag.startswith("v1+")

    def test_summarize_does_not_invalidate(self, tmp_path):
        root = str(tmp_path / "s")
        DiskStore(root, tag="old").put(("k",), 1)
        info = summarize_store(root)
        assert info["tag"] == "old" and info["entries"] == 1
        # summarizing under a different current tag must not wipe
        assert DiskStore(root, tag="old").get(("k",)) == (True, 1)


class TestPersistentCacheTier:
    """The two-tier memo cache: disk hits repopulate memory and are
    bit-identical to the in-memory value."""

    def test_offline_schedule_survives_memory_clear(self, tmp_path):
        from repro.sweep.cache import (
            cache_stats,
            cached_offline_schedule,
            clear_cache,
        )
        from repro.workloads import uniform_random_relation

        rel = uniform_random_relation(8, 200, seed=3)
        store = DiskStore(str(tmp_path / "s"), tag="t")
        with persistent_cache_scope(store=store):
            clear_cache()
            first = cached_offline_schedule(rel, 4)
            clear_cache()  # drop the in-memory tier only
            again = cached_offline_schedule(rel, 4)
            stats = cache_stats()
        assert stats.disk_hits == 1
        assert (first.flit_slots == again.flit_slots).all()
        assert first.algorithm == again.algorithm

    def test_scope_restores_previous_tier(self, tmp_path):
        from repro.sweep.cache import persistent_store

        before = persistent_store()
        with persistent_cache_scope(str(tmp_path / "s")):
            assert persistent_store() is not None
        assert persistent_store() is before

    def test_env_gate(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_PERSISTENT_CACHE", "0")
        assert maybe_enable_from_env() is None
        monkeypatch.setenv("REPRO_PERSISTENT_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envstore"))
        try:
            store = maybe_enable_from_env()
            assert store is not None
            assert str(tmp_path / "envstore") in store.root
        finally:
            disable_persistent_cache()

    def test_configure_and_disable(self, tmp_path):
        try:
            store = configure_persistent_cache(str(tmp_path / "s"))
            assert store.put(("smoke",), 1)
        finally:
            disable_persistent_cache()
