"""Tests for Unbalanced-Granular-Send (Theorem 6.4) and the long-message /
overhead senders (Section 6.1 closing remarks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import (
    evaluate_schedule,
    unbalanced_granular_send,
    unbalanced_send_long,
    unbalanced_send_with_overhead,
)
from repro.workloads import (
    HRelation,
    one_to_all_relation,
    uniform_random_relation,
    variable_length_relation,
)


class TestGranularSend:
    def test_valid(self):
        rel = uniform_random_relation(256, 10_000, seed=0)
        sched = unbalanced_granular_send(rel, m=32, c=4.0, seed=1)
        sched.check_valid(require_consecutive=True)

    def test_starts_are_granule_aligned(self):
        rel = uniform_random_relation(128, 5000, seed=2)
        sched = unbalanced_granular_send(rel, m=16, c=4.0, seed=3)
        granule = int(sched.meta["granule"])
        # light processors start at multiples of t'; reconstruct starts
        lengths = rel.length
        starts_idx = np.cumsum(lengths) - lengths
        x = rel.sizes
        threshold = rel.n / 16
        for msg in range(rel.n_messages):
            src = rel.src[msg]
            if x[src] <= threshold:
                block_start = sched.flit_slots[starts_idx[msg]] - int(
                    np.sum(lengths[:msg][rel.src[:msg] == src])
                )
                assert block_start % granule == 0

    def test_span_within_window(self):
        rel = uniform_random_relation(512, 20_000, seed=4)
        sched = unbalanced_granular_send(rel, m=64, c=4.0, seed=5)
        # span <= c*n/m + x̄' by construction
        assert sched.span <= sched.window + rel.x_bar

    def test_no_overload_with_reasonable_m(self):
        rel = uniform_random_relation(1024, 100_000, seed=6)
        for seed in range(10):
            sched = unbalanced_granular_send(rel, m=256, c=4.0, seed=seed)
            rep = evaluate_schedule(sched, m=256)
            assert not rep.overloaded

    def test_bad_c(self):
        rel = uniform_random_relation(8, 10, seed=7)
        with pytest.raises(ValueError):
            unbalanced_granular_send(rel, m=4, c=0.5)

    def test_empty_relation(self):
        rel = HRelation(
            p=4,
            src=np.zeros(0, dtype=np.int64),
            dest=np.zeros(0, dtype=np.int64),
            length=np.zeros(0, dtype=np.int64),
        )
        sched = unbalanced_granular_send(rel, m=4)
        assert sched.span == 0


class TestLongMessages:
    def test_consecutive_flits(self):
        rel = variable_length_relation(64, 800, mean_length=10, dist="pareto", seed=8)
        sched = unbalanced_send_long(rel, m=16, epsilon=0.2, seed=9)
        sched.check_valid(require_consecutive=True)

    def test_span_within_window_plus_lhat(self):
        rel = variable_length_relation(128, 2000, mean_length=8, seed=10)
        sched = unbalanced_send_long(rel, m=32, epsilon=0.2, seed=11)
        assert sched.span <= max(sched.window + rel.max_length, rel.x_bar)

    def test_additive_term_beats_consecutive_send(self):
        """The wrap-avoiding sender's additive term is l_hat, not x̄' —
        with many short messages per processor the two differ a lot."""
        rel = variable_length_relation(32, 3200, mean_length=4, dist="uniform", seed=12)
        long_sched = unbalanced_send_long(rel, m=8, epsilon=0.2, seed=13)
        window = long_sched.window
        assert long_sched.span <= window + rel.max_length
        assert rel.max_length < rel.x_bar  # the comparison is meaningful

    def test_oversized_processor(self):
        rel = one_to_all_relation(64, length=3)
        sched = unbalanced_send_long(rel, m=63, epsilon=0.1, seed=14)
        sched.check_valid(require_consecutive=True)


class TestOverhead:
    def test_zero_overhead_is_plain_long_send(self):
        rel = variable_length_relation(32, 300, mean_length=5, seed=15)
        sched, inflated = unbalanced_send_with_overhead(rel, m=8, o=0, epsilon=0.2, seed=16)
        assert inflated is rel
        assert sched.algorithm == "unbalanced-send-long"

    def test_inflated_lengths(self):
        rel = variable_length_relation(32, 300, mean_length=5, seed=17)
        sched, inflated = unbalanced_send_with_overhead(rel, m=8, o=3, epsilon=0.2, seed=18)
        assert np.array_equal(inflated.length, rel.length + 3)
        sched.check_valid(require_consecutive=True)
        assert sched.meta["overhead"] == 3.0

    def test_negative_overhead_rejected(self):
        rel = variable_length_relation(8, 10, seed=19)
        with pytest.raises(ValueError):
            unbalanced_send_with_overhead(rel, m=4, o=-1)

    def test_cost_matches_paper_shape(self):
        """Completion ≈ (1+eps)(1+o/l̄)n/m + l̂ + o for balanced workloads."""
        rel = variable_length_relation(256, 5000, mean_length=6, seed=20)
        o, eps, m = 4, 0.25, 64
        sched, inflated = unbalanced_send_with_overhead(rel, m=m, o=o, epsilon=eps, seed=21)
        rep = evaluate_schedule(sched, m=m)
        bound = (1 + eps) * (1 + o / rel.mean_length) * rel.n / m + rel.max_length + o
        assert rep.span <= bound * 1.1 + inflated.x_bar


@settings(max_examples=20, deadline=None)
@given(
    p=st.integers(2, 32),
    nm=st.integers(1, 200),
    m=st.integers(1, 16),
    o=st.integers(0, 5),
    seed=st.integers(0, 10_000),
)
def test_long_and_overhead_always_valid(p, nm, m, o, seed):
    rel = variable_length_relation(p, nm, mean_length=3, seed=seed)
    sched, _ = unbalanced_send_with_overhead(rel, m=m, o=o, epsilon=0.25, seed=seed)
    sched.check_valid(require_consecutive=True)
