"""Tests for application workloads, relation I/O, load profiles, the QSM
columnsort, and the §4.1 conversion-factor formulas."""

import numpy as np
import pytest

from repro import MachineParams, QSMg, QSMm
from repro.algorithms import (
    bsp_lower_bound_from_crcw,
    bsp_lower_bound_from_crcw_deterministic,
    bsp_lower_bound_from_crcw_randomized,
    columnsort,
)
from repro.scheduling import offline_optimal_schedule, unbalanced_send, naive_schedule
from repro.workloads import (
    block_remap_relation,
    load_relation,
    matrix_transpose_relation,
    save_relation,
    task_spawn_relation,
    uniform_random_relation,
    zipf_h_relation,
)


class TestMatrixTranspose:
    def test_balanced(self):
        rel = matrix_transpose_relation(8, 64, 64)
        assert rel.x_bar == rel.y_bar
        # perfectly regular: every processor sends the same amount
        assert rel.imbalance() == pytest.approx(1.0)

    def test_total_volume(self):
        # all off-diagonal blocks move: rows*cols*(1 - 1/p)
        rel = matrix_transpose_relation(4, 32, 32)
        assert rel.n == 32 * 32 * 3 // 4

    def test_rectangular(self):
        rel = matrix_transpose_relation(4, 16, 64)
        assert rel.n > 0
        assert rel.p == 4

    def test_single_processor(self):
        rel = matrix_transpose_relation(1, 8, 8)
        assert rel.n == 0  # nothing leaves the single owner


class TestBlockRemap:
    def test_identity_remap_is_empty(self):
        rel = block_remap_relation(4, 100, 8, 8)
        assert rel.n == 0

    def test_counts_conserved(self):
        p, n = 8, 1000
        rel = block_remap_relation(p, n, 4, 16)
        idx = np.arange(n)
        src = (idx // 4) % p
        dest = (idx // 16) % p
        assert rel.n == int(np.sum(src != dest))

    def test_regular_pattern(self):
        rel = block_remap_relation(16, 10_000, 2, 32)
        assert rel.imbalance() < 1.5


class TestTaskSpawn:
    def test_reproducible(self):
        a = task_spawn_relation(32, seed=5)
        b = task_spawn_relation(32, seed=5)
        assert np.array_equal(a.src, b.src)

    def test_burst_quantization(self):
        rel = task_spawn_relation(32, burst=50, seed=6)
        assert np.all(rel.sizes % 50 == 0)


class TestRelationIO:
    def test_roundtrip(self, tmp_path):
        rel = zipf_h_relation(64, 5000, seed=7)
        path = tmp_path / "rel.npz"
        save_relation(path, rel)
        back = load_relation(path)
        assert back.p == rel.p
        assert np.array_equal(back.src, rel.src)
        assert np.array_equal(back.dest, rel.dest)
        assert np.array_equal(back.length, rel.length)

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, nothing=np.zeros(3))
        with pytest.raises(ValueError, match="not a relation file"):
            load_relation(path)

    def test_version_checked(self, tmp_path):
        rel = uniform_random_relation(4, 10, seed=8)
        path = tmp_path / "rel.npz"
        np.savez(
            path, version=np.asarray([99]), p=np.asarray([rel.p]),
            src=rel.src, dest=rel.dest, length=rel.length,
        )
        with pytest.raises(ValueError, match="version"):
            load_relation(path)

    def test_corrupted_data_fails_invariants(self, tmp_path):
        rel = uniform_random_relation(4, 10, seed=9)
        path = tmp_path / "rel.npz"
        np.savez(
            path, version=np.asarray([1]), p=np.asarray([2]),  # p too small
            src=rel.src, dest=rel.dest, length=rel.length,
        )
        with pytest.raises(ValueError):
            load_relation(path)


class TestLoadProfile:
    def test_flat_schedule(self):
        rel = uniform_random_relation(64, 5000, seed=10)
        sched = offline_optimal_schedule(rel, m=16)
        prof = sched.load_profile(m=16)
        assert "slots" in prof
        assert "!" not in prof  # never overloaded

    def test_bursty_schedule_flagged(self):
        rel = uniform_random_relation(64, 5000, seed=11)
        prof = naive_schedule(rel).load_profile(m=4)
        assert "!" in prof

    def test_empty(self):
        rel = uniform_random_relation(4, 0, seed=12)
        assert "empty" in unbalanced_send(rel, 2, 0.2, seed=1).load_profile()


class TestQSMColumnsort:
    @pytest.mark.parametrize("n", [200, 1024])
    def test_qsm_m_sorts(self, n):
        rng = np.random.default_rng(n)
        keys = rng.random(n)
        mach = QSMm(MachineParams(p=64, m=8))
        res, out = columnsort(mach, keys)
        assert np.array_equal(out, np.sort(keys))
        assert res.stat_max("overloaded_slots") == 0

    def test_qsm_g_sorts(self):
        rng = np.random.default_rng(0)
        keys = rng.random(512)
        mach = QSMg(MachineParams(p=64, g=4.0))
        res, out = columnsort(mach, keys)
        assert np.array_equal(out, np.sort(keys))

    def test_qsm_m_beats_qsm_g(self):
        rng = np.random.default_rng(1)
        keys = rng.random(2048)
        local, global_ = MachineParams.matched_pair(p=64, m=8, L=2)
        t_g = columnsort(QSMg(local), keys, columns=7)[0].time
        t_m = columnsort(QSMm(global_), keys, columns=7)[0].time
        assert t_m < t_g


class TestConversionFactors:
    def test_deterministic_full_factor(self):
        assert bsp_lower_bound_from_crcw_deterministic(10.0, 4.0) == 40.0
        assert bsp_lower_bound_from_crcw_deterministic(
            10.0, 4.0
        ) == bsp_lower_bound_from_crcw(10.0, 4.0)

    def test_randomized_large_L_is_full(self):
        # L >= g lg* p: full g factor
        val = bsp_lower_bound_from_crcw_randomized(10.0, 4.0, L=1000.0, p=2**16)
        assert val == pytest.approx(40.0)

    def test_randomized_small_L_discounted(self):
        val = bsp_lower_bound_from_crcw_randomized(10.0, 4.0, L=1.0, p=2**16)
        assert val < 40.0
        assert val >= 40.0 / 5  # lg* 2^16 = 4 (+1 safety)

    def test_bad_g(self):
        with pytest.raises(ValueError):
            bsp_lower_bound_from_crcw_randomized(1.0, 0.5, 1.0, 16)
