"""Algorithm-layer vectorization — bit-identity vs the frozen scalar twins.

Every Table-1 / Section-5 / Section-6 program that was ported to the
columnar batch APIs (``send_many`` / ``read_many`` / ``write_many`` +
``ctx.receive().payloads``) is gated here against its verbatim scalar
original from :mod:`repro.algorithms.scalar_reference`: same
``RunResult.time``, same per-superstep costs and stats, same message/flit
totals, same program results, on every machine model the algorithm targets.
"""

import operator

import numpy as np
import pytest

from repro import (
    BSPg,
    BSPm,
    MachineParams,
    QSMg,
    QSMm,
    SelfSchedulingBSPm,
)
from repro.algorithms import scalar_reference as sr
from repro.algorithms.list_ranking import (
    _contraction_program,
    random_list,
    sequential_ranks,
)
from repro.algorithms.one_to_all import (
    one_to_all_bsp_program,
    one_to_all_qsm_program,
)
from repro.algorithms.prefix import (
    reduce_funnel_bsp_program,
    reduce_funnel_qsm_program,
    reduce_tree_bsp_program,
    reduce_tree_qsm_program,
)
from repro.algorithms.primitives import BSPComm, QSMComm
from repro.algorithms.qsm_on_bsp import run_qsm_program_on_bsp
from repro.algorithms.sample_sort import _sample_sort_program, sample_sort
from repro.algorithms.sorting import (
    _columnsort_program,
    _columnsort_qsm_program,
    choose_columns,
)
from repro.util.intmath import ceil_div, ilog2
from repro.util.rng import as_generator

P = 16
MSG_MACHINES = [BSPg, BSPm, SelfSchedulingBSPm]
QSM_MACHINES = [QSMg, QSMm]


def make(cls):
    return cls(MachineParams(p=P, m=4, g=2.0, L=3))


def assert_equivalent_runs(res_a, res_b):
    assert res_a.time == res_b.time
    assert res_a.supersteps == res_b.supersteps
    assert [r.cost for r in res_a.records] == [r.cost for r in res_b.records]
    assert [r.stats for r in res_a.records] == [r.stats for r in res_b.records]
    assert res_a.total_messages == res_b.total_messages
    assert res_a.total_flits == res_b.total_flits


# ----------------------------------------------------------------------
# one-to-all personalized communication
# ----------------------------------------------------------------------


@pytest.mark.parametrize("cls", MSG_MACHINES)
@pytest.mark.parametrize("root", [0, 3])
def test_one_to_all_bsp(cls, root):
    payloads = [f"pkt{i}" for i in range(P)]
    res_b = make(cls).run(one_to_all_bsp_program, args=(payloads, root))
    res_s = make(cls).run(sr.one_to_all_bsp_scalar, args=(payloads, root))
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results == payloads


@pytest.mark.parametrize("cls", QSM_MACHINES)
@pytest.mark.parametrize("root", [0, 3])
def test_one_to_all_qsm(cls, root):
    payloads = [f"pkt{i}" for i in range(P)]
    res_b = make(cls).run(one_to_all_qsm_program, args=(payloads, root))
    res_s = make(cls).run(sr.one_to_all_qsm_scalar, args=(payloads, root))
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results == payloads


# ----------------------------------------------------------------------
# columnsort
# ----------------------------------------------------------------------


def _run_columnsort(machine, keys, program):
    """Replicates the host-side setup of :func:`repro.algorithms.sorting.
    columnsort` so the scalar twin runs through identical parameters."""
    keys = np.asarray(keys, dtype=np.float64)
    n = keys.size
    p = machine.params.p
    m = machine.params.m
    cap = m if m is not None else p
    limit = cap - 1 if machine.uses_shared_memory else cap
    r, s = choose_columns(n, min(max(1, limit), p - 1))
    assert s > 1  # pick n large enough to exercise the real program
    per_proc = ceil_div(n, p)
    chunks = [
        [float(x) for x in keys[i * per_proc : (i + 1) * per_proc]] for i in range(p)
    ]
    res = machine.run(
        program, args=(n, r, s, cap, per_proc), per_proc_args=[(c,) for c in chunks]
    )
    out = []
    for block in res.results:
        if block:
            out.extend(block)
    return res, np.asarray(out, dtype=np.float64)


@pytest.mark.parametrize("cls", MSG_MACHINES)
def test_columnsort_bsp(cls):
    keys = as_generator(11).uniform(-50, 50, size=100)
    res_b, out_b = _run_columnsort(make(cls), keys, _columnsort_program)
    res_s, out_s = _run_columnsort(make(cls), keys, sr.columnsort_bsp_scalar)
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results
    assert np.array_equal(out_b, np.sort(keys))


@pytest.mark.parametrize("cls", QSM_MACHINES)
def test_columnsort_qsm(cls):
    keys = as_generator(12).uniform(-50, 50, size=100)
    res_b, out_b = _run_columnsort(make(cls), keys, _columnsort_qsm_program)
    res_s, out_s = _run_columnsort(make(cls), keys, sr.columnsort_qsm_scalar)
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results
    assert np.array_equal(out_b, np.sort(keys))


# ----------------------------------------------------------------------
# sample sort
# ----------------------------------------------------------------------


@pytest.mark.parametrize("cls", MSG_MACHINES)
def test_sample_sort(cls):
    keys = as_generator(13).uniform(-1000, 1000, size=200)
    res_b, out_b = sample_sort(make(cls), keys, seed=5)
    res_s, out_s = sr.sample_sort_scalar(make(cls), keys, seed=5)
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results
    assert np.array_equal(out_b, np.sort(keys))
    assert np.array_equal(out_s, out_b)


def test_sample_sort_scalar_twin_matches_program_signature():
    """The scalar twin must stay in lock-step with the live program's
    argument list — a drift here silently voids the benchmark baseline."""
    import inspect

    live = inspect.signature(_sample_sort_program)
    twin = inspect.signature(sr.sample_sort_scalar_program)
    assert list(live.parameters) == list(twin.parameters)


# ----------------------------------------------------------------------
# list-ranking contraction
# ----------------------------------------------------------------------


def _run_contraction(machine, succ, program, seed):
    """Replicates :func:`repro.algorithms.list_ranking.
    list_ranking_contraction`'s host setup (same RNG stream -> same
    per-processor seeds for both programs)."""
    succ = np.asarray(succ, dtype=np.int64)
    n = succ.size
    p = machine.params.p
    m = machine.params.m
    a = min(p, m) if m is not None else p
    max_rounds = 4 * (ilog2(max(1, n)) + 1) + 16
    rng = as_generator(seed)
    seeds = rng.integers(0, 2**62, size=p)
    blocks = [dict() for _ in range(p)]
    for u in range(n):
        blocks[u % a][u] = int(succ[u])
    per_proc = [(blocks[i], int(seeds[i])) for i in range(p)]
    return machine.run(program, args=(a, max_rounds), per_proc_args=per_proc)


@pytest.mark.parametrize("cls", MSG_MACHINES)
def test_contraction(cls):
    succ = random_list(48, seed=21)
    res_b = _run_contraction(make(cls), succ, _contraction_program, seed=9)
    res_s = _run_contraction(make(cls), succ, sr.contraction_scalar, seed=9)
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results
    ranks = np.full(48, -1, dtype=np.int64)
    for out in res_b.results:
        for u, r in out.get("ranks", {}).items():
            ranks[u] = r
    assert np.array_equal(ranks, sequential_ranks(succ))


# ----------------------------------------------------------------------
# QSM-on-BSP emulation
# ----------------------------------------------------------------------


def _emu_workload(ctx, phases):
    """A QSM-style program with both reads and writes every phase; reads
    see the *previous* phase's writes (QSM read rule)."""
    pid, p = ctx.pid, ctx.nprocs
    total = 0.0
    for ph in range(phases):
        ctx.write(("cell", pid), float(pid * 100 + ph))
        handles = [ctx.read(("cell", (pid + d) % p)) for d in range(1, 4)]
        ctx.work(1)
        yield
        total += sum(h.value for h in handles if h.value is not None)
    return total


@pytest.mark.parametrize("cls", MSG_MACHINES)
def test_qsm_on_bsp_emulation(cls):
    res_b = run_qsm_program_on_bsp(make(cls), _emu_workload, args=(4,))
    res_s = sr.run_qsm_on_bsp_scalar(make(cls), _emu_workload, args=(4,))
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results
    # phases 1..3 each add the three neighbours' previous-phase values
    expected = [
        sum(
            ((pid + d) % P) * 100 + (ph - 1)
            for ph in range(1, 4)
            for d in range(1, 4)
        )
        for pid in range(P)
    ]
    assert res_b.results == expected


# ----------------------------------------------------------------------
# reductions (summation / parity skeleton)
# ----------------------------------------------------------------------


def _reduce_values(seed=17):
    return [int(v) for v in as_generator(seed).integers(-100, 100, size=P)]


def _run_reduce(machine, program, args):
    values = _reduce_values()
    return machine.run(program, args=args, per_proc_args=[(v,) for v in values])


@pytest.mark.parametrize("cls", MSG_MACHINES)
@pytest.mark.parametrize("b", [2, 3])
def test_reduce_tree_bsp(cls, b):
    res_b = _run_reduce(make(cls), reduce_tree_bsp_program, (operator.add, b))
    res_s = _run_reduce(make(cls), sr.reduce_tree_bsp_scalar, (operator.add, b))
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results
    assert res_b.results[0] == sum(_reduce_values())


@pytest.mark.parametrize("cls", MSG_MACHINES)
def test_reduce_funnel_bsp(cls):
    res_b = _run_reduce(make(cls), reduce_funnel_bsp_program, (operator.add, 4, 2))
    res_s = _run_reduce(make(cls), sr.reduce_funnel_bsp_scalar, (operator.add, 4, 2))
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results
    assert res_b.results[0] == sum(_reduce_values())


@pytest.mark.parametrize("cls", QSM_MACHINES)
@pytest.mark.parametrize("b", [2, 3])
def test_reduce_tree_qsm(cls, b):
    res_b = _run_reduce(make(cls), reduce_tree_qsm_program, (operator.add, b))
    res_s = _run_reduce(make(cls), sr.reduce_tree_qsm_scalar, (operator.add, b))
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results
    assert res_b.results[0] == sum(_reduce_values())


def test_reduce_tree_qsm_without_aggregate_bandwidth():
    """QSM(g) has ``m = None``: ``stagger_slots`` returns ``None`` and the
    batch read must still price like the scalar slot-less reads."""
    machine_args = MachineParams(p=P, g=2.0, L=3)
    res_b = _run_reduce(QSMg(machine_args), reduce_tree_qsm_program, (operator.add, 3))
    res_s = _run_reduce(QSMg(machine_args), sr.reduce_tree_qsm_scalar, (operator.add, 3))
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results


@pytest.mark.parametrize("cls", QSM_MACHINES)
def test_reduce_funnel_qsm(cls):
    res_b = _run_reduce(make(cls), reduce_funnel_qsm_program, (operator.add, 4, 2))
    res_s = _run_reduce(make(cls), sr.reduce_funnel_qsm_scalar, (operator.add, 4, 2))
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results
    assert res_b.results[0] == sum(_reduce_values())


# ----------------------------------------------------------------------
# keyed-exchange Comm adapters
# ----------------------------------------------------------------------


def _comm_program(ctx, comm, rounds):
    pid, p = ctx.pid, ctx.nprocs
    acc = []
    for rnd in range(rounds):
        out = [((pid + j) % p, ("k", rnd, pid, j), pid * 10 + j) for j in range(3)]
        expect = [("k", rnd, (pid - j) % p, j) for j in range(3)]
        got = yield from comm.exchange(ctx, out, expect)
        acc.append(sorted(got.items(), key=repr))
    return acc


@pytest.mark.parametrize("cls", MSG_MACHINES)
def test_bsp_comm_adapter(cls):
    res_b = make(cls).run(_comm_program, args=(BSPComm(), 3))
    res_s = make(cls).run(_comm_program, args=(sr.BSPCommScalar(), 3))
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results


@pytest.mark.parametrize("cls", QSM_MACHINES)
def test_qsm_comm_adapter(cls):
    res_b = make(cls).run(_comm_program, args=(QSMComm(), 3))
    res_s = make(cls).run(_comm_program, args=(sr.QSMCommScalar(), 3))
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results
