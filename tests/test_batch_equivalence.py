"""Scalar vs batch API equivalence — the columnar engine's core contract.

The batch program APIs (``send_many`` / ``read_many`` / ``write_many``) must
be *pricing-invisible*: a program written with one batch call and the same
program written as a loop of scalar calls produce identical
``RunResult.time``, identical per-superstep costs and stats dicts, and
identical delivered inboxes / read values, on every machine model.  These
tests pin that contract, plus the :class:`ModelViolation` paths through the
vectorized checks (duplicate ``(src, slot)`` injection, mixed read/write
contention) and the :class:`DenseSharedMemory` fast path.
"""

import numpy as np
import pytest

from repro import (
    BSPg,
    BSPm,
    MachineParams,
    ModelViolation,
    QSMg,
    QSMm,
    SelfSchedulingBSPm,
)
from repro.core.engine import DenseSharedMemory

P = 16
MSG_MACHINES = [BSPg, BSPm, SelfSchedulingBSPm]
QSM_MACHINES = [QSMg, QSMm]
ALL_MACHINES = MSG_MACHINES + QSM_MACHINES


def make(cls):
    return cls(MachineParams(p=P, m=4, g=2.0, L=3))


def _pattern(pid: int, n: int):
    """A deterministic per-processor message pattern with mixed sizes."""
    i = np.arange(n, dtype=np.int64)
    dests = (pid + 1 + i * 3) % P
    sizes = 1 + (i % 3)
    return dests, sizes


def _snapshot(inbox):
    return [(m.src, m.dest, m.size, m.slot, m.payload) for m in inbox]


def scalar_msg_program(ctx, n):
    dests, sizes = _pattern(ctx.pid, n)
    for i in range(n):
        ctx.send(int(dests[i]), ("pay", ctx.pid, i), size=int(sizes[i]))
    yield
    first = _snapshot(ctx.receive())
    ctx.work(float(ctx.pid))
    dests2, sizes2 = _pattern(ctx.pid, n // 2)
    for i in range(n // 2):
        ctx.send(int(dests2[i]), ("pay2", ctx.pid, i), size=int(sizes2[i]))
    yield
    return first, _snapshot(ctx.receive())


def batch_msg_program(ctx, n):
    dests, sizes = _pattern(ctx.pid, n)
    ctx.send_many(dests, payloads=[("pay", ctx.pid, i) for i in range(n)], sizes=sizes)
    yield
    first = _snapshot(ctx.receive())
    ctx.work(float(ctx.pid))
    dests2, sizes2 = _pattern(ctx.pid, n // 2)
    ctx.send_many(
        dests2, payloads=[("pay2", ctx.pid, i) for i in range(n // 2)], sizes=sizes2
    )
    yield
    return first, _snapshot(ctx.receive())


def scalar_qsm_program(ctx, n):
    pid, p = ctx.pid, ctx.nprocs
    for j in range(n):
        ctx.write((pid * n + j) % (2 * p * n), pid * 1000 + j)
    yield
    handles = [ctx.read((pid + j) % (2 * p * n)) for j in range(n)]
    yield
    return [h.value for h in handles]


def batch_qsm_program(ctx, n):
    pid, p = ctx.pid, ctx.nprocs
    span = 2 * p * n
    ctx.write_many((pid * n + np.arange(n)) % span, pid * 1000 + np.arange(n))
    yield
    handle = ctx.read_many((pid + np.arange(n)) % span)
    yield
    return list(handle.values)


def assert_equivalent_runs(res_a, res_b):
    assert res_a.time == res_b.time
    assert res_a.supersteps == res_b.supersteps
    assert [r.cost for r in res_a.records] == [r.cost for r in res_b.records]
    assert [r.stats for r in res_a.records] == [r.stats for r in res_b.records]
    assert res_a.total_messages == res_b.total_messages
    assert res_a.total_flits == res_b.total_flits


@pytest.mark.parametrize("cls", MSG_MACHINES)
def test_send_many_equivalence(cls):
    res_s = make(cls).run(scalar_msg_program, args=(12,))
    res_b = make(cls).run(batch_msg_program, args=(12,))
    assert_equivalent_runs(res_s, res_b)
    assert res_s.results == res_b.results  # identical delivered inboxes


@pytest.mark.parametrize("cls", QSM_MACHINES)
def test_read_write_many_equivalence(cls):
    res_s = make(cls).run(scalar_qsm_program, args=(6,))
    res_b = make(cls).run(batch_qsm_program, args=(6,))
    assert_equivalent_runs(res_s, res_b)
    assert [list(map(int, r)) for r in res_s.results] == [
        list(map(int, r)) for r in res_b.results
    ]


@pytest.mark.parametrize("cls", ALL_MACHINES)
def test_all_five_models_report_identical_times(cls):
    """The acceptance criterion verbatim: scalar and batch paths report
    identical model times on all five machine models."""
    if cls in QSM_MACHINES:
        t_s = make(cls).run(scalar_qsm_program, args=(5,)).time
        t_b = make(cls).run(batch_qsm_program, args=(5,)).time
    else:
        t_s = make(cls).run(scalar_msg_program, args=(10,)).time
        t_b = make(cls).run(batch_msg_program, args=(10,)).time
    assert t_s == t_b


def test_mixed_scalar_and_batch_preserves_order():
    """Interleaving scalar sends around a send_many keeps issue order."""

    def mixed(ctx):
        if ctx.pid == 0:
            ctx.send(1, "a")
            ctx.send_many([1, 1], payloads=["b", "c"])
            ctx.send(1, "d")
        yield
        return [m.payload for m in ctx.receive()]

    res = make(BSPg).run(mixed)
    assert res.results[1] == ["a", "b", "c", "d"]
    # auto slots continue across the scalar/batch boundary
    rec = res.records[0]
    assert rec.msg_batch.slot.tolist() == [0, 1, 2, 3]


def _mixed_scalar_program(ctx, n):
    """All-scalar twin of :func:`_mixed_interleaved_program`."""
    dests, sizes = _pattern(ctx.pid, n)
    for i in range(n):
        ctx.send(int(dests[i]), ("x", ctx.pid, i), size=int(sizes[i]))
    yield
    first = _snapshot(ctx.receive())
    for i in range(n):
        ctx.send(int(dests[i]), ("y", ctx.pid, i), slot=3 * i)
    yield
    return first, _snapshot(ctx.receive())


def _mixed_interleaved_program(ctx, n):
    """Scalar sends interleaved with send_many: auto slots in superstep 1
    (multi-flit, continuing across the boundary), explicit slots in 2."""
    dests, sizes = _pattern(ctx.pid, n)
    h = n // 2
    for i in range(h):
        ctx.send(int(dests[i]), ("x", ctx.pid, i), size=int(sizes[i]))
    ctx.send_many(
        dests[h:], payloads=[("x", ctx.pid, i) for i in range(h, n)], sizes=sizes[h:]
    )
    yield
    first = _snapshot(ctx.receive())
    ctx.send(int(dests[0]), ("y", ctx.pid, 0), slot=0)
    ctx.send_many(
        dests[1:],
        payloads=[("y", ctx.pid, i) for i in range(1, n)],
        slots=3 * np.arange(1, n, dtype=np.int64),
    )
    yield
    return first, _snapshot(ctx.receive())


@pytest.mark.parametrize("cls", MSG_MACHINES)
def test_mixed_scalar_and_batch_pricing_equivalence(cls):
    """Interleaving scalar sends around batch sends — with sizes, auto
    slots, and explicit slots in the mix — prices identically to the
    all-scalar issue sequence on every message-passing model."""
    res_s = make(cls).run(_mixed_scalar_program, args=(12,))
    res_m = make(cls).run(_mixed_interleaved_program, args=(12,))
    assert res_s.time == res_m.time
    assert [r.cost for r in res_s.records] == [r.cost for r in res_m.records]
    assert [r.stats for r in res_s.records] == [r.stats for r in res_m.records]
    assert res_s.total_messages == res_m.total_messages
    assert res_s.total_flits == res_m.total_flits
    assert res_s.results == res_m.results  # identical delivered inboxes


# ----------------------------------------------------------------------
# ModelViolation paths through the vectorized checks
# ----------------------------------------------------------------------


def test_duplicate_src_slot_injection_batch():
    def dup(ctx):
        if ctx.pid == 0:
            ctx.send_many([1, 2], slots=[0, 0])
        yield

    with pytest.raises(ModelViolation, match="two flits"):
        make(BSPm).run(dup)


def test_duplicate_flit_slot_from_expansion():
    """A 2-flit message and a unit message colliding on the second slot."""

    def dup(ctx):
        if ctx.pid == 0:
            ctx.send(1, size=2, slot=0)  # occupies slots 0 and 1
            ctx.send(2, slot=1)
        yield

    with pytest.raises(ModelViolation, match="two flits"):
        make(BSPm).run(dup)


def test_duplicate_request_slot_batch():
    def dup(ctx):
        if ctx.pid == 0:
            ctx.read_many([0, 1], slots=[0, 0])
        yield
        yield

    with pytest.raises(ModelViolation, match="two shared-memory requests"):
        make(QSMm).run(dup)


@pytest.mark.parametrize("cls", QSM_MACHINES)
def test_mixed_read_write_contention_batch(cls):
    def mixed(ctx):
        if ctx.pid == 0:
            ctx.read_many([5, 6])
        else:
            ctx.write_many([5], [1])
        yield
        yield

    with pytest.raises(ModelViolation, match="both read and written"):
        make(cls).run(mixed)


@pytest.mark.parametrize("cls", QSM_MACHINES)
def test_mixed_contention_object_addresses(cls):
    """The same rule through the object-address (non-integer) group-by."""

    def mixed(ctx):
        if ctx.pid == 0:
            ctx.read_many([("cell", 5)])
        else:
            ctx.write_many([("cell", 5)], [1])
        yield
        yield

    with pytest.raises(ModelViolation, match="both read and written"):
        make(cls).run(mixed)


# ----------------------------------------------------------------------
# Dense shared memory fast path
# ----------------------------------------------------------------------


def test_dense_memory_matches_dict_memory():
    plain = make(QSMg)
    res_plain = plain.run(batch_qsm_program, args=(6,))
    dense = make(QSMg)
    dense.use_dense_memory(2 * P * 6)
    res_dense = dense.run(batch_qsm_program, args=(6,))
    assert_equivalent_runs(res_plain, res_dense)
    assert [list(map(int, r)) for r in res_plain.results] == [
        list(map(int, r)) for r in res_dense.results
    ]


def test_dense_memory_mapping_api():
    mem = DenseSharedMemory(8)
    mem[3] = "x"
    mem[("tup", 1)] = "overflow"
    mem[100] = "far"
    assert mem[3] == "x" and mem[("tup", 1)] == "overflow" and mem[100] == "far"
    assert mem.get(4) is None and mem.get(("nope",), "d") == "d"
    assert set(mem) == {3, ("tup", 1), 100}
    assert len(mem) == 3
    del mem[3]
    assert mem.get(3) is None
    mem.clear()
    assert len(mem) == 0


def test_dense_memory_duplicate_writes_last_wins():
    mem = DenseSharedMemory(8)
    mem.put(np.array([2, 2, 2]), [10, 20, 30])
    assert mem[2] == 30  # Arbitrary rule: last write in record order


def test_batch_read_handle_unresolved():
    from repro.core.engine import ProgramError

    def premature(ctx):
        h = ctx.read_many([0, 1])
        _ = h.values  # before the barrier: must raise
        yield

    with pytest.raises(ProgramError, match="not yet resolved"):
        make(QSMg).run(premature)
