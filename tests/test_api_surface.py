"""API-surface consistency: every ``__all__`` name resolves, every public
subpackage imports, and the top-level package re-exports what the README
promises."""

import importlib
import pkgutil

import pytest

import repro

SUBMODULES = [
    "repro.core",
    "repro.core.costs",
    "repro.core.engine",
    "repro.core.events",
    "repro.core.params",
    "repro.models",
    "repro.models.bsp_g",
    "repro.models.bsp_m",
    "repro.models.qsm_g",
    "repro.models.qsm_m",
    "repro.models.self_scheduling",
    "repro.models.logp",
    "repro.models.two_level",
    "repro.models.pram",
    "repro.models.pram_m",
    "repro.workloads",
    "repro.workloads.relations",
    "repro.workloads.applications",
    "repro.workloads.io",
    "repro.scheduling",
    "repro.scheduling.schedule",
    "repro.scheduling.static_send",
    "repro.scheduling.granular",
    "repro.scheduling.long_messages",
    "repro.scheduling.offline",
    "repro.scheduling.naive",
    "repro.scheduling.analysis",
    "repro.scheduling.execute",
    "repro.scheduling.prefix_broadcast",
    "repro.dynamic",
    "repro.dynamic.adversary",
    "repro.dynamic.protocols",
    "repro.dynamic.simulation",
    "repro.dynamic.queueing",
    "repro.algorithms",
    "repro.algorithms.broadcast",
    "repro.algorithms.one_to_all",
    "repro.algorithms.prefix",
    "repro.algorithms.list_ranking",
    "repro.algorithms.sorting",
    "repro.algorithms.sample_sort",
    "repro.algorithms.h_relation",
    "repro.algorithms.emulation",
    "repro.algorithms.pram_algorithms",
    "repro.algorithms.total_exchange",
    "repro.algorithms.qsm_on_bsp",
    "repro.concurrent_read",
    "repro.theory",
    "repro.theory.bounds",
    "repro.theory.separations",
    "repro.theory.chernoff",
    "repro.theory.sensitivity",
    "repro.util",
    "repro.obs",
    "repro.obs.tracer",
    "repro.obs.metrics",
    "repro.obs.instrument",
    "repro.obs.export",
    "repro.obs.manifest",
    "repro.obs.compare",
    "repro.harness",
]


@pytest.mark.parametrize("name", SUBMODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", SUBMODULES)
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol!r}"


def test_every_public_symbol_has_a_docstring():
    undocumented = []
    for name in SUBMODULES:
        mod = importlib.import_module(name)
        for symbol in getattr(mod, "__all__", []):
            obj = getattr(mod, symbol)
            if callable(obj) and not isinstance(obj, type(repro)):
                if not (getattr(obj, "__doc__", None) or "").strip():
                    undocumented.append(f"{name}.{symbol}")
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_top_level_exports():
    for symbol in repro.__all__:
        assert hasattr(repro, symbol)
    # the README's imports
    from repro import BSPg, BSPm, LogP, MachineParams, QSMg, QSMm  # noqa: F401
    from repro.scheduling import evaluate_schedule, unbalanced_send  # noqa: F401
    from repro.workloads import zipf_h_relation  # noqa: F401


def test_all_package_modules_are_listed():
    """Every module under repro/ is importable (catches syntax errors in
    modules the rest of the suite never touches)."""
    found = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        found.append(info.name)
        importlib.import_module(info.name)
    assert len(found) >= len(SUBMODULES) - 6  # packages counted differently
