"""Tests for Section 6.2: adversaries, protocols, stability, M/G/1."""

import math

import numpy as np
import pytest

from repro import MachineParams
from repro.dynamic import (
    ZETA4,
    AlgorithmBProtocol,
    BSPgIntervalProtocol,
    BurstyAdversary,
    SingleTargetAdversary,
    UniformAdversary,
    check_compliance,
    expected_time_in_system,
    mg1_mean_queue_at_departure,
    mg1_stable,
    required_u,
    run_dynamic,
    s0_service_moments,
)
from repro.dynamic.adversary import ArrivalTrace


P, M, L, W, T = 256, 16, 8, 128, 16_000


@pytest.fixture
def pair():
    return MachineParams.matched_pair(p=P, m=M, L=L)


class TestAdversaries:
    def test_single_target_compliant(self):
        adv = SingleTargetAdversary(P, W, beta=0.25)
        trace = adv.generate(T, seed=0)
        ok, why = check_compliance(trace, W, alpha=0.25, beta=0.25)
        assert ok, why
        assert set(trace.src.tolist()) == {0}

    def test_single_target_rate(self):
        trace = SingleTargetAdversary(P, W, beta=0.5).generate(T, seed=0)
        assert trace.n == pytest.approx(0.5 * T, rel=0.01)

    def test_single_target_rejects_beta_above_one(self):
        with pytest.raises(ValueError):
            SingleTargetAdversary(P, W, beta=1.5).generate(100)

    def test_uniform_compliant(self):
        alpha = 0.5 * M
        adv = UniformAdversary(P, W, alpha=alpha, beta=alpha)
        trace = adv.generate(T, seed=1)
        ok, why = check_compliance(trace, W, alpha=alpha, beta=alpha)
        assert ok, why

    def test_uniform_rate(self):
        alpha = 2.0
        trace = UniformAdversary(P, W, alpha=alpha, beta=alpha).generate(T, seed=2)
        assert trace.n == pytest.approx(alpha * T, rel=0.02)

    def test_bursty_compliant(self):
        adv = BurstyAdversary(P, W, alpha=4.0, beta=1.0)
        trace = adv.generate(T, seed=3)
        ok, why = check_compliance(trace, W, alpha=4.0, beta=1.0)
        assert ok, why

    def test_beta_cannot_exceed_alpha(self):
        with pytest.raises(ValueError):
            UniformAdversary(P, W, alpha=1.0, beta=2.0)

    def test_trace_window(self):
        trace = SingleTargetAdversary(P, W, beta=0.5).generate(1000, seed=4)
        sub = trace.window(100, 200)
        assert np.all((sub.t >= 100) & (sub.t < 200))

    def test_trace_sorted(self):
        trace = UniformAdversary(P, W, alpha=1.0, beta=1.0).generate(1000, seed=5)
        assert np.all(np.diff(trace.t) >= 0)

    def test_compliance_detects_violation(self):
        bad = ArrivalTrace(
            p=4,
            horizon=100,
            t=np.zeros(50, dtype=np.int64),
            src=np.zeros(50, dtype=np.int64),
            dest=np.ones(50, dtype=np.int64),
        )
        ok, why = check_compliance(bad, w=10, alpha=0.1, beta=0.1)
        assert not ok


class TestTheorem65:
    """BSP(g) is stable iff beta <= 1/g."""

    def test_stable_below_threshold(self, pair):
        local, _ = pair
        g = local.g
        trace = SingleTargetAdversary(P, W, beta=0.5 / g).generate(T, seed=0)
        res = run_dynamic(BSPgIntervalProtocol(local, W), trace)
        assert res.is_stable()
        assert res.final_backlog <= 2 * W

    def test_unstable_above_threshold(self, pair):
        local, _ = pair
        g = local.g
        beta = 2.0 / g
        trace = SingleTargetAdversary(P, W, beta=beta).generate(T, seed=0)
        res = run_dynamic(BSPgIntervalProtocol(local, W), trace)
        assert not res.is_stable()
        # measured growth rate matches the proof's beta - 1/g
        assert res.backlog_slope() == pytest.approx(beta - 1 / g, rel=0.15)

    def test_backlog_grows_linearly(self, pair):
        local, _ = pair
        trace = SingleTargetAdversary(P, W, beta=4.0 / local.g).generate(T, seed=1)
        res = run_dynamic(BSPgIntervalProtocol(local, W), trace)
        first_half = res.backlog[len(res.backlog) // 2]
        assert res.final_backlog >= 1.7 * first_half


class TestTheorem67:
    """Algorithm B on the BSP(m) rides out what sinks the BSP(g)."""

    def test_stable_where_bsp_g_fails(self, pair):
        local, global_ = pair
        beta = 2.0 / local.g  # kills BSP(g)
        trace = SingleTargetAdversary(P, W, beta=beta).generate(T, seed=0)
        res = run_dynamic(
            AlgorithmBProtocol(global_, W, alpha=beta, epsilon=0.25, seed=1), trace
        )
        assert res.is_stable()
        # only the final, not-yet-served window may remain in flight
        assert res.final_backlog <= math.ceil(beta * W) + 1

    def test_stable_at_high_local_rate(self, pair):
        _, global_ = pair
        beta = 0.75  # x̄ per window = 96 < w: fine for the global model
        trace = SingleTargetAdversary(P, W, beta=beta).generate(T, seed=2)
        res = run_dynamic(
            AlgorithmBProtocol(global_, W, alpha=beta, epsilon=0.25, seed=3), trace
        )
        assert res.is_stable()

    def test_unstable_past_aggregate_limit(self, pair):
        _, global_ = pair
        alpha = 1.5 * M
        trace = UniformAdversary(P, W, alpha=alpha, beta=alpha).generate(T, seed=4)
        res = run_dynamic(
            AlgorithmBProtocol(global_, W, alpha=alpha, epsilon=0.25, seed=5), trace
        )
        assert not res.is_stable()

    def test_sojourn_bounded_when_stable(self, pair):
        _, global_ = pair
        trace = SingleTargetAdversary(P, W, beta=0.5).generate(T, seed=6)
        res = run_dynamic(
            AlgorithmBProtocol(global_, W, alpha=0.5, epsilon=0.25, seed=7), trace
        )
        assert res.mean_sojourn <= 3 * W


class TestQueueing:
    def test_s0_first_moment_is_zeta4(self):
        m1, _ = s0_service_moments(w=100, u=10)
        assert m1 == pytest.approx(ZETA4 * 10, rel=1e-6)
        assert m1 < 1.21 * 10  # the paper's quoted (looser) constant

    def test_s0_second_moment(self):
        _, m2 = s0_service_moments(w=100, u=10, kmax=200_000)
        # E[S^2] = (w/u)^2 * sum k^2 ((k+1)^4 - k^4)/(k^4 (k+1)^4)
        series = sum(
            k * k * (1.0 / k**4 - 1.0 / (k + 1) ** 4) for k in range(1, 200_001)
        )
        assert m2 == pytest.approx(100.0 * series, rel=1e-6)

    def test_mg1_stability_condition(self):
        assert mg1_stable(0.05, 10.0)
        assert not mg1_stable(0.2, 10.0)

    def test_pollaczek_khinchine(self):
        q = mg1_mean_queue_at_departure(0.05, 10.0, 150.0)
        assert q == pytest.approx(0.5 + 0.0025 * 150.0 / (2 * 0.5))

    def test_pk_infinite_when_unstable(self):
        assert mg1_mean_queue_at_departure(0.2, 10.0, 150.0) == math.inf

    def test_required_u(self):
        assert required_u(100, 0.05) == math.floor(1.21 * 5) + 1
        # and the resulting queue is stable
        u = required_u(100, 0.05)
        m1, _ = s0_service_moments(100, u)
        assert mg1_stable(0.05, m1)

    def test_expected_time_O_w2_over_u(self):
        t1 = expected_time_in_system(100, 10, 0.01)
        t2 = expected_time_in_system(200, 10, 0.01)
        assert t2 / t1 == pytest.approx(4.0, rel=0.15)  # quadratic in w

    def test_expected_time_infinite_when_unstable(self):
        assert expected_time_in_system(100, 1, 0.9) == math.inf


class TestStabilityFrontier:
    def test_frontier_values(self, pair):
        _, global_ = pair
        proto = AlgorithmBProtocol(global_, W, alpha=1.0, epsilon=0.25, seed=0)
        alpha_max, beta_max = proto.stability_frontier(r=0.01)
        # alpha_max < m/(1+eps), beta_max < 1
        assert 0 < alpha_max < M / 1.25
        assert 0 < beta_max < 1.0

    def test_frontier_shrinks_with_epsilon(self, pair):
        _, global_ = pair
        lo = AlgorithmBProtocol(global_, W, alpha=1.0, epsilon=0.1).stability_frontier()
        hi = AlgorithmBProtocol(global_, W, alpha=1.0, epsilon=0.5).stability_frontier()
        assert hi[0] < lo[0]

    def test_running_inside_the_frontier_is_stable(self, pair):
        _, global_ = pair
        proto = AlgorithmBProtocol(global_, W, alpha=0.0, epsilon=0.25, seed=1)
        alpha_max, beta_max = proto.stability_frontier()
        beta = min(0.5 * beta_max, 0.9)
        trace = SingleTargetAdversary(P, W, beta=beta).generate(T, seed=2)
        proto = AlgorithmBProtocol(global_, W, alpha=beta, epsilon=0.25, seed=3)
        res = run_dynamic(proto, trace)
        assert res.is_stable()
