"""Tests for the extension features: gap template, hard-capacity penalty
injection, report summaries, timeline rendering, and engine invariants
under randomized programs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BSPm, CapacityPenalty, MachineParams
from repro.dynamic import BSPgIntervalProtocol, SingleTargetAdversary, run_dynamic
from repro.scheduling import evaluate_schedule, unbalanced_send
from repro.workloads import uniform_random_relation


class TestGapTemplate:
    def test_valid(self):
        rel = uniform_random_relation(64, 2000, seed=0)
        sched = unbalanced_send(rel, 64, 0.5, seed=1, template="gap", gap=3)
        sched.check_valid()

    def test_spacing_enforced(self):
        """Within the cyclic window, a processor's successive flits sit
        ``gap`` apart (mod W) whenever its spaced block fits."""
        rel = uniform_random_relation(16, 100, seed=2)
        gap = 4
        sched = unbalanced_send(rel, 32, 1.0, seed=3, template="gap", gap=gap)
        W = sched.window
        flit_src = sched.flit_src
        for pid in range(16):
            mine = sched.flit_slots[flit_src == pid]
            if mine.size * gap <= W and mine.size > 1:
                diffs = np.diff(mine) % W
                assert np.all(diffs == gap % W), pid

    def test_oversized_fallback(self):
        from repro.workloads import one_to_all_relation

        rel = one_to_all_relation(64)
        sched = unbalanced_send(rel, 8, 0.2, seed=4, template="gap", gap=10)
        sched.check_valid()  # falls back to consecutive for the big sender

    def test_bad_gap(self):
        rel = uniform_random_relation(8, 10, seed=5)
        with pytest.raises(ValueError, match="gap"):
            unbalanced_send(rel, 4, 0.2, template="gap", gap=0)


class TestCapacityPenaltyInjection:
    def test_bspm_with_hard_capacity_raises_on_overload(self):
        """A BSP(m) with the hard-capacity penalty models LOGP/PRAM(m)-style
        networks: overload is an error, not a cost."""
        mach = BSPm(MachineParams(p=16, m=2, L=1), penalty=CapacityPenalty())

        def prog(ctx):
            ctx.send((ctx.pid + 1) % ctx.nprocs, "x", slot=0)
            yield

        with pytest.raises(OverflowError, match="overloaded"):
            mach.run(prog)

    def test_clean_program_unaffected(self):
        mach = BSPm(MachineParams(p=16, m=2, L=1), penalty=CapacityPenalty())

        def prog(ctx):
            ctx.send((ctx.pid + 1) % ctx.nprocs, "x", slot=ctx.stagger_slot())
            yield

        res = mach.run(prog)
        assert res.time >= 1


class TestSummaries:
    def test_schedule_report_summary(self):
        rel = uniform_random_relation(64, 2000, seed=6)
        rep = evaluate_schedule(unbalanced_send(rel, 32, 0.3, seed=7), m=32)
        text = rep.summary()
        assert "unbalanced-send" in text
        assert "offline optimum" in text

    def test_summary_mentions_overload(self):
        from repro.scheduling import naive_schedule

        rel = uniform_random_relation(64, 2000, seed=8)
        rep = evaluate_schedule(naive_schedule(rel), m=4)
        assert "overloaded slots" in rep.summary()

    def test_dynamic_timeline(self):
        local, _ = MachineParams.matched_pair(p=64, m=8, L=4)
        trace = SingleTargetAdversary(64, 64, beta=0.5).generate(4000, seed=9)
        res = run_dynamic(BSPgIntervalProtocol(local, 64), trace)
        text = res.render_timeline()
        assert "backlog over time" in text
        assert "UNSTABLE" in text or "stable" in text


class TestEngineInvariantsRandomPrograms:
    """Property: for arbitrary staggered communication programs the engine
    conserves messages and prices supersteps at least at the L floor."""

    @settings(max_examples=20, deadline=None)
    @given(
        p=st.integers(2, 12),
        fanout=st.integers(0, 4),
        supersteps=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_conservation(self, p, fanout, supersteps, seed):
        rng = np.random.default_rng(seed)
        sends = rng.integers(0, p, size=(supersteps, p, fanout)) if fanout else None

        def prog(ctx):
            got = 0
            for s in range(supersteps):
                if fanout:
                    for d in sends[s, ctx.pid]:
                        ctx.send(int(d), None, slot=ctx.stagger_slot())
                yield
                got += len(ctx.receive())
            return got

        mach = BSPm(MachineParams(p=p, m=max(1, p // 2), L=2))
        res = mach.run(prog)
        assert sum(res.results) == supersteps * p * fanout
        for record in res.records[:supersteps]:
            assert record.cost >= 2  # the L floor
        assert res.total_messages == supersteps * p * fanout


class TestSerialization:
    def test_schedule_report_to_dict_roundtrips_json(self):
        import json

        rel = uniform_random_relation(32, 500, seed=20)
        rep = evaluate_schedule(unbalanced_send(rel, 8, 0.25, seed=21), m=8)
        d = rep.to_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["ratio"] == pytest.approx(rep.ratio)

    def test_dynamic_result_to_dict(self):
        import json

        local, _ = MachineParams.matched_pair(p=32, m=4, L=2)
        trace = SingleTargetAdversary(32, 32, beta=0.25).generate(2000, seed=22)
        res = run_dynamic(BSPgIntervalProtocol(local, 32), trace)
        d = res.to_dict()
        json.dumps(d)
        assert d["stable"] == res.is_stable()
        assert len(d["backlog"]) == len(res.backlog)
