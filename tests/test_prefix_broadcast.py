"""Tests for the n-computation phase (prefix sum + broadcast) on the BSP(m)."""

import pytest

from repro import BSPg, BSPm, MachineParams, SelfSchedulingBSPm
from repro.scheduling import sum_and_broadcast, tau_bound


class TestSumAndBroadcast:
    @pytest.mark.parametrize("p,m,L", [(16, 4, 2), (64, 8, 4), (256, 16, 8), (100, 7, 3)])
    def test_correct_total_everywhere(self, p, m, L):
        mach = BSPm(MachineParams(p=p, m=m, L=L))
        values = list(range(p))
        res, totals = sum_and_broadcast(mach, values)
        assert totals == [sum(values)] * p

    def test_measured_time_within_bound(self):
        params = MachineParams(p=256, m=16, L=8)
        mach = BSPm(params)
        res, _ = sum_and_broadcast(mach, [1.0] * 256)
        assert res.time <= 2.0 * tau_bound(params)

    def test_no_overload(self):
        mach = BSPm(MachineParams(p=512, m=8, L=4))
        res, _ = sum_and_broadcast(mach, [1.0] * 512)
        assert res.stat_max("overloaded_slots") == 0

    def test_single_processor(self):
        mach = BSPm(MachineParams(p=1, m=1, L=2))
        res, totals = sum_and_broadcast(mach, [42.0])
        assert totals == [42.0]

    def test_m_equals_p(self):
        mach = BSPm(MachineParams(p=32, m=32, L=2))
        res, totals = sum_and_broadcast(mach, [2.0] * 32)
        assert totals == [64.0] * 32

    def test_wrong_value_count(self):
        mach = BSPm(MachineParams(p=8, m=2))
        with pytest.raises(ValueError):
            sum_and_broadcast(mach, [1.0] * 3)

    def test_works_on_bspg_and_self_scheduling(self):
        for mach in (
            BSPg(MachineParams(p=64, g=8.0, L=4)),
            SelfSchedulingBSPm(MachineParams(p=64, m=8, L=4)),
        ):
            res, totals = sum_and_broadcast(mach, [1.0] * 64)
            assert totals == [64.0] * 64

    def test_custom_branching(self):
        mach = BSPm(MachineParams(p=64, m=16, L=4))
        res, totals = sum_and_broadcast(mach, [1.0] * 64, branching=4)
        assert totals == [64.0] * 64


class TestTauBound:
    def test_scales_with_p_over_m(self):
        a = tau_bound(MachineParams(p=1024, m=8, L=4))
        b = tau_bound(MachineParams(p=2048, m=8, L=4))
        assert b > a

    def test_latency_term(self):
        small_l = tau_bound(MachineParams(p=64, m=64, L=2))
        big_l = tau_bound(MachineParams(p=64, m=64, L=64))
        assert big_l > small_l

    def test_requires_m(self):
        with pytest.raises(ValueError):
            tau_bound(MachineParams(p=8))
