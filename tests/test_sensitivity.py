"""Tests for the numeric Theorem-4.1 sensitivity verification and the
rotating-target adversary."""


import pytest

from repro.dynamic import RotatingTargetAdversary, check_compliance
from repro.theory import closed_form_Y, minimize_sensitivity_bound
from repro.theory.bounds import broadcast_bsp_g_lower


class TestSensitivityMinimization:
    @pytest.mark.parametrize("p", [16, 256, 4096])
    @pytest.mark.parametrize("g,L", [(1.0, 1.0), (2.0, 16.0), (8.0, 8.0), (4.0, 64.0)])
    def test_closed_form_lower_bounds_numeric(self, p, g, L):
        """The paper's closed form never exceeds the true discrete optimum
        (it is a lower bound obtained by relaxing integrality)."""
        opt = minimize_sensitivity_bound(p, g, L)
        assert closed_form_Y(p, g, L) <= opt.value * (1 + 1e-9)

    @pytest.mark.parametrize("p", [64, 1024])
    def test_numeric_close_to_closed_form(self, p):
        """And it is tight within a small constant (integrality slack)."""
        g, L = 2.0, 32.0
        opt = minimize_sensitivity_bound(p, g, L)
        assert opt.value <= 3.0 * closed_form_Y(p, g, L)

    def test_optimal_y_near_L_over_g(self):
        """The proof pins the optimum at y = L/g."""
        p, g, L = 4096, 2.0, 64.0
        opt = minimize_sensitivity_bound(p, g, L)
        assert 0.2 * L / g <= opt.y <= 5.0 * L / g

    def test_T_lower_matches_theorem(self):
        p, g, L = 1024, 4.0, 16.0
        opt = minimize_sensitivity_bound(p, g, L)
        # Theorem 4.1's stated bound is the closed form halved
        assert broadcast_bsp_g_lower(p, g, L) == pytest.approx(
            closed_form_Y(p, g, L) / 2.0
        )
        assert opt.T_lower >= broadcast_bsp_g_lower(p, g, L) * 0.999

    def test_trivial_p(self):
        assert minimize_sensitivity_bound(1, 2.0, 4.0).value == 0.0
        assert closed_form_Y(1, 2.0, 4.0) == 0.0

    def test_constraint_always_satisfied(self):
        p, g, L = 729, 3.0, 9.0
        opt = minimize_sensitivity_bound(p, g, L)
        assert (2 * opt.y + 1) ** opt.n >= p * (1 - 1e-9)


class TestRotatingTargetAdversary:
    def test_compliant(self):
        adv = RotatingTargetAdversary(64, w=32, beta=0.5, rotation=4)
        trace = adv.generate(8000, seed=0)
        ok, why = check_compliance(trace, 32, alpha=0.5, beta=0.5)
        assert ok, why

    def test_source_rotates(self):
        adv = RotatingTargetAdversary(64, w=32, beta=0.5, rotation=2)
        trace = adv.generate(8000, seed=1)
        assert len(set(trace.src.tolist())) > 1

    def test_single_source_per_epoch(self):
        adv = RotatingTargetAdversary(64, w=32, beta=0.5, rotation=2)
        trace = adv.generate(8000, seed=2)
        period = 2 * 32
        for start in range(0, 8000, period):
            sub = trace.window(start, start + period)
            if sub.n:
                assert len(set(sub.src.tolist())) == 1

    def test_rate(self):
        adv = RotatingTargetAdversary(64, w=32, beta=0.25)
        trace = adv.generate(10_000, seed=3)
        assert trace.n == pytest.approx(2500, rel=0.01)

    def test_beta_above_one_rejected(self):
        with pytest.raises(ValueError):
            RotatingTargetAdversary(8, 16, beta=1.5)

    def test_sinks_bsp_g_like_the_static_flood(self):
        from repro import MachineParams
        from repro.dynamic import BSPgIntervalProtocol, run_dynamic

        local, _ = MachineParams.matched_pair(p=64, m=8, L=4)
        beta = 2.0 / local.g
        trace = RotatingTargetAdversary(64, 128, beta=beta).generate(16_000, seed=4)
        res = run_dynamic(BSPgIntervalProtocol(local, 128), trace)
        assert not res.is_stable()
