"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BSPg,
    BSPm,
    MachineParams,
    QSMg,
    QSMm,
    SelfSchedulingBSPm,
)


@pytest.fixture
def matched_small():
    """A small matched (local, global) parameter pair: p=64, m=8, g=8, L=4."""
    return MachineParams.matched_pair(p=64, m=8, L=4)


@pytest.fixture
def matched_medium():
    """p=256, m=16, g=16, L=8."""
    return MachineParams.matched_pair(p=256, m=16, L=8)


@pytest.fixture
def bsp_pair(matched_small):
    local, global_ = matched_small
    return BSPg(local), BSPm(global_)


@pytest.fixture
def qsm_pair(matched_small):
    local, global_ = matched_small
    return QSMg(local), QSMm(global_)


@pytest.fixture
def all_machines(matched_small):
    local, global_ = matched_small
    return {
        "bsp_g": BSPg(local),
        "bsp_m": BSPm(global_),
        "qsm_g": QSMg(local),
        "qsm_m": QSMm(global_),
        "self_sched": SelfSchedulingBSPm(global_),
    }


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
