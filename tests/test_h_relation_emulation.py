"""Tests for the CRCW h-relation gadget (§4.1) and the model emulations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    PRAMTrace,
    bsp_lower_bound_from_crcw,
    crcw_max,
    grouping_emulation_time,
    realize_h_relation_crcw,
    self_scheduling_transfer,
    simulate_trace_on_qsm_m,
)
from repro.workloads import (
    all_to_one_relation,
    one_to_all_relation,
    uniform_random_relation,
    variable_length_relation,
)


def delivered_pairs(rel, delivered):
    got = sorted((d, s) for d in range(rel.p) for s in delivered[d])
    want = sorted(zip(rel.dest.tolist(), rel.src.tolist()))
    return got, want


class TestHRelationRealization:
    def test_uniform(self):
        rel = uniform_random_relation(12, 40, seed=0)
        res, delivered = realize_h_relation_crcw(rel)
        got, want = delivered_pairs(rel, delivered)
        assert got == want

    def test_all_to_one(self):
        rel = all_to_one_relation(10)
        res, delivered = realize_h_relation_crcw(rel)
        got, want = delivered_pairs(rel, delivered)
        assert got == want
        # y_bar = 9 rounds, 2 steps each: O(h) exactly
        assert res.time == 2 * 9

    def test_one_to_all(self):
        rel = one_to_all_relation(10)
        res, delivered = realize_h_relation_crcw(rel)
        got, want = delivered_pairs(rel, delivered)
        assert got == want
        assert res.time == 2  # y_bar = 1: one round

    def test_time_is_O_of_h(self):
        rel = uniform_random_relation(16, 100, seed=1)
        res, _ = realize_h_relation_crcw(rel)
        assert res.time <= 2 * rel.y_bar + 2

    def test_rejects_long_messages(self):
        rel = variable_length_relation(8, 10, mean_length=4, seed=2)
        if rel.length.max() > 1:
            with pytest.raises(ValueError):
                realize_h_relation_crcw(rel)

    @settings(max_examples=15, deadline=None)
    @given(p=st.integers(2, 12), n=st.integers(0, 60), seed=st.integers(0, 1000))
    def test_property_all_delivered(self, p, n, seed):
        rel = uniform_random_relation(p, n, seed=seed)
        res, delivered = realize_h_relation_crcw(rel)
        got, want = delivered_pairs(rel, delivered)
        assert got == want


class TestCrcwMax:
    def test_constant_steps(self):
        res, mx = crcw_max([5, 2, 9, 1])
        assert mx == 9
        assert res.time <= 6  # O(1) steps, independent of p

    def test_all_processors_know(self):
        res, _ = crcw_max([3, 7, 7, 1])
        assert all(v == 7 for v in res.results[:4])

    def test_single_value(self):
        _, mx = crcw_max([42])
        assert mx == 42

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            crcw_max([])

    def test_step_count_independent_of_p(self):
        t4 = crcw_max(list(range(4)))[0].time
        t10 = crcw_max(list(range(10)))[0].time
        assert t4 == t10


class TestLowerBoundConversion:
    def test_multiplies_by_g(self):
        assert bsp_lower_bound_from_crcw(10.0, g=4.0) == 40.0

    def test_rejects_bad_g(self):
        with pytest.raises(ValueError):
            bsp_lower_bound_from_crcw(10.0, g=0.5)


class TestGroupingEmulation:
    def test_identity(self):
        assert grouping_emulation_time(123.0) == 123.0


class TestPRAMTrace:
    def test_balanced(self):
        tr = PRAMTrace.balanced(t=10, work_per_step=100, input_size=100)
        assert tr.t == 10 and tr.w == 1000

    def test_geometric_shape(self):
        tr = PRAMTrace.geometric(1024)
        assert tr.ops[0] == 1024
        assert tr.w <= 3 * 1024  # O(n) total work
        assert tr.t <= 2 * 11  # O(lg n) steps

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError):
            PRAMTrace(np.array([-1]), 4)

    def test_simulation_bound(self):
        """Measured QSM(m) time of the naive simulation is within the
        paper's O(n/m + t + w/m) for every trace shape."""
        for tr in (
            PRAMTrace.balanced(20, 256, 256),
            PRAMTrace.geometric(4096),
            PRAMTrace(np.array([1, 1000, 1, 1000]), 1000),
        ):
            for m in (1, 4, 64, 1024):
                measured, bound = simulate_trace_on_qsm_m(tr, m)
                assert measured <= 2 * bound + 2, (tr.ops[:4], m)

    def test_bad_m(self):
        with pytest.raises(ValueError):
            simulate_trace_on_qsm_m(PRAMTrace.geometric(16), 0)


class TestSelfSchedulingTransfer:
    def test_ratio_near_one_plus_eps(self):
        rel = uniform_random_relation(512, 50_000, seed=3)
        _, _, ratio = self_scheduling_transfer(rel, m=128, epsilon=0.2, seed=4)
        assert ratio <= 1.25

    def test_skewed_is_exact(self):
        rel = one_to_all_relation(256)
        self_c, real_c, ratio = self_scheduling_transfer(rel, m=32, epsilon=0.1, seed=5)
        assert ratio == pytest.approx(1.0, abs=0.05)

    def test_components_returned(self):
        rel = uniform_random_relation(64, 1000, seed=6)
        self_c, real_c, ratio = self_scheduling_transfer(rel, m=16, epsilon=0.25, seed=7)
        assert real_c >= self_c * 0.99
        assert ratio == pytest.approx(real_c / self_c)
