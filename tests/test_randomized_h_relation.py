"""Tests for the randomized CRCW h-relation realization (§4.1, randomized
conversion)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    realize_h_relation_crcw,
    realize_h_relation_crcw_randomized,
)
from repro.workloads import all_to_one_relation, uniform_random_relation


def check_delivery(rel, delivered):
    got = sorted((d, s) for d in range(rel.p) for s in delivered[d])
    want = sorted(zip(rel.dest.tolist(), rel.src.tolist()))
    assert got == want


class TestRandomizedRealization:
    def test_uniform(self):
        rel = uniform_random_relation(12, 40, seed=0)
        res, delivered = realize_h_relation_crcw_randomized(rel, seed=1)
        check_delivery(rel, delivered)

    def test_all_to_one(self):
        rel = all_to_one_relation(12)
        res, delivered = realize_h_relation_crcw_randomized(rel, seed=2)
        check_delivery(rel, delivered)

    def test_deterministic_given_seed(self):
        rel = uniform_random_relation(8, 20, seed=3)
        t1 = realize_h_relation_crcw_randomized(rel, seed=7)[0].time
        t2 = realize_h_relation_crcw_randomized(rel, seed=7)[0].time
        assert t1 == t2

    def test_time_is_h_plus_log(self):
        """The step count is O(h + lg n): dart rounds O(lg n) + bucket scan
        O(c·h)."""
        rel = all_to_one_relation(16)  # h = 15
        res, _ = realize_h_relation_crcw_randomized(rel, c=4, seed=4)
        h = rel.y_bar
        import math

        max_rounds = 4 * (int(math.log2(rel.n + 1)) + 1) + 8
        bound = 3 * max_rounds + 4 * h + 4  # 3 phases/round + bucket scan
        assert res.time <= bound

    def test_small_c_rejected(self):
        rel = uniform_random_relation(4, 8, seed=5)
        with pytest.raises(ValueError):
            realize_h_relation_crcw_randomized(rel, c=1)

    def test_insufficient_rounds_detected(self):
        # 63 darts into a 126-cell bucket collide w.h.p.; one round cannot
        # land them all, and the library must say so rather than lose mail.
        rel = all_to_one_relation(64)
        with pytest.raises(RuntimeError, match="incomplete"):
            realize_h_relation_crcw_randomized(rel, c=2, max_rounds=1, seed=6)

    def test_rejects_long_messages(self):
        from repro.workloads import variable_length_relation

        rel = variable_length_relation(8, 10, mean_length=4, seed=7)
        if rel.length.max() > 1:
            with pytest.raises(ValueError):
                realize_h_relation_crcw_randomized(rel)

    def test_empty(self):
        rel = uniform_random_relation(4, 0, seed=8)
        res, delivered = realize_h_relation_crcw_randomized(rel, seed=9)
        assert all(not d for d in delivered)

    @settings(max_examples=10, deadline=None)
    @given(p=st.integers(2, 10), n=st.integers(0, 40), seed=st.integers(0, 1000))
    def test_property_always_delivers(self, p, n, seed):
        rel = uniform_random_relation(p, n, seed=seed)
        res, delivered = realize_h_relation_crcw_randomized(rel, seed=seed)
        check_delivery(rel, delivered)

    def test_agrees_with_deterministic(self):
        rel = uniform_random_relation(10, 30, seed=10)
        _, det = realize_h_relation_crcw(rel)
        _, rand = realize_h_relation_crcw_randomized(rel, seed=11)
        for d in range(10):
            assert sorted(det[d]) == sorted(rand[d])
