"""Tests for the LOGP model (the paper's third locally-limited reference)."""

import pytest

from repro import LogP, MachineParams, ModelViolation
from repro.models.logp import LogP as LogPDirect


def make(p=8, g=2.0, o=1.5, L=8.0, **kw):
    return LogP(MachineParams(p=p, g=g, o=o, L=L), **kw)


class TestPricing:
    def test_single_message(self):
        mach = make()

        def prog(ctx):
            if ctx.pid == 0:
                ctx.send(1, "x")
            yield

        res = mach.run(prog)
        # (1-1)*max(g,o) + 2o + L = 3 + 8 = 11
        assert res.time == 11.0

    def test_k_messages_gap_dominated(self):
        mach = make(g=3.0, o=1.0)

        def prog(ctx):
            if ctx.pid == 0:
                for d in range(1, 5):
                    ctx.send(d, "x")
            yield

        res = mach.run(prog)
        # 4 sends: (4-1)*3 + 2*1 + 8 = 19
        assert res.time == 19.0

    def test_overhead_dominated(self):
        mach = make(g=1.0, o=4.0)

        def prog(ctx):
            if ctx.pid == 0:
                for d in range(1, 4):
                    ctx.send(d, "x")
            yield

        res = mach.run(prog)
        # (3-1)*4 + 8 + 8 = 24
        assert res.time == 24.0

    def test_sends_plus_receives_charged(self):
        mach = make(g=2.0, o=1.0, L=4.0)

        def prog(ctx):
            # ring: everyone sends one, receives one: s+r = 2
            ctx.send((ctx.pid + 1) % ctx.nprocs, "x")
            yield

        res = mach.run(prog)
        assert res.time == (2 - 1) * 2.0 + 2 * 1.0 + 4.0

    def test_work_only_superstep(self):
        mach = make()

        def prog(ctx):
            ctx.work(42.0)
            yield

        assert mach.run(prog).time == 42.0

    def test_zero_comm_zero_latency(self):
        mach = make()

        def prog(ctx):
            yield

        assert mach.run(prog).time == 0.0


class TestCapacity:
    def test_capacity_value(self):
        assert make(g=2.0, L=8.0).capacity == 4

    def test_violation_on_hot_destination(self):
        mach = make(p=16, g=2.0, L=4.0)  # capacity 2
        assert mach.capacity == 2

        def prog(ctx):
            if ctx.pid != 0:
                ctx.send(0, "x", slot=0)
            yield

        with pytest.raises(ModelViolation, match="capacity"):
            mach.run(prog)

    def test_staggered_injection_respects_capacity(self):
        mach = make(p=16, g=2.0, L=4.0)

        def prog(ctx):
            if ctx.pid != 0:
                ctx.send(0, "x", slot=ctx.pid)  # one per slot
            yield

        res = mach.run(prog)  # no violation
        assert res.records[0].stats["h"] == 15.0

    def test_scalar_sends_accumulate_to_violation(self):
        # each sender issues a single scalar ctx.send; the violation only
        # exists in aggregate, at the shared destination slot
        mach = make(p=8, g=2.0, L=4.0)  # capacity 2
        def prog(ctx):
            if ctx.pid in (1, 2, 3):
                ctx.send(0, ctx.pid, slot=0)
            yield
        with pytest.raises(ModelViolation, match=r"3 messages.*processor 0.*slot 0"):
            mach.run(prog)

    def test_scalar_send_at_capacity_boundary_passes(self):
        # exactly cap messages to one (dest, slot) is legal; cap+1 is not
        mach = make(p=8, g=2.0, L=4.0)  # capacity 2
        def prog(ctx):
            if ctx.pid in (1, 2):
                ctx.send(0, ctx.pid, slot=0)
            yield
        res = mach.run(prog)
        assert res.records[0].stats["h"] == 2.0

    def test_scalar_oversized_message_violates_alone(self):
        # one scalar send with size > cap busts the per-slot capacity by itself
        mach = make(p=8, g=2.0, L=4.0)  # capacity 2
        def prog(ctx):
            if ctx.pid == 1:
                ctx.send(0, "big", size=3, slot=0)
            yield
        with pytest.raises(ModelViolation, match="capacity"):
            mach.run(prog)

    def test_capacity_disabled(self):
        mach = make(p=16, g=2.0, L=4.0, enforce_capacity=False)

        def prog(ctx):
            if ctx.pid != 0:
                ctx.send(0, "x", slot=0)
            yield

        mach.run(prog)  # allowed

    def test_one_to_all_cost_matches_logp_formula(self):
        """The paper's opening example priced on LOGP: the root's p-1 sends
        cost (p-2)·max(g,o) + 2o + L — the same Θ(g·p) as BSP(g)."""
        p, g, o, L = 32, 2.0, 1.0, 8.0
        mach = make(p=p, g=g, o=o, L=L)

        def prog(ctx):
            if ctx.pid == 0:
                for d in range(1, ctx.nprocs):
                    ctx.send(d, d, slot=d - 1)
            yield

        res = mach.run(prog)
        assert res.time == (p - 2) * max(g, o) + 2 * o + L

    def test_export(self):
        assert LogP is LogPDirect


class TestAlgorithmsOnLogP:
    """The generic BSP-style algorithms run unchanged on LOGP (it is a
    message-passing machine); costs follow the LOGP formula."""

    def test_broadcast(self):
        from repro.algorithms import broadcast

        mach = make(p=64, g=2.0, o=1.0, L=8.0)
        res = broadcast(mach, value=9)
        assert res.results == [9] * 64

    def test_one_to_all_respects_capacity(self):
        from repro.algorithms import one_to_all

        mach = make(p=32, g=2.0, o=1.0, L=8.0)
        res = one_to_all(mach)  # root sends one per slot: capacity safe
        assert res.results == list(range(32))

    def test_summation(self):
        from repro.algorithms import summation

        mach = make(p=32, g=2.0, o=1.0, L=4.0)
        res, total = summation(mach, [1.0] * 32)
        assert total == 32.0


class TestAlgorithmsOnTwoLevel:
    def test_broadcast(self):
        from repro import TwoLevelBSP
        from repro.algorithms import broadcast

        mach = TwoLevelBSP(MachineParams(p=64, L=4.0), g1=2.0, g2=1.0)
        res = broadcast(mach, value=5)
        assert res.results == [5] * 64
