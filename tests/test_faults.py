"""Tests for the fault-injection and resilience layer (repro.faults)."""

import numpy as np
import pytest

from repro import BSPm, MachineParams, ProgramError, RunAborted
from repro.faults import (
    AuditViolation,
    CorruptedPayload,
    CrashSpec,
    FaultInjector,
    FaultPlan,
    StallSpec,
    TransportError,
    audit_record,
    is_corrupted,
    reliable_route,
)
from repro.scheduling import route, route_reliable, unbalanced_send
from repro.scheduling.execute import execute_schedule
from repro.workloads import uniform_random_relation


def make_machine(p=16, m=4, L=2.0):
    return BSPm(MachineParams(p=p, m=m, L=L))


def ring_program(ctx, rounds):
    total = 0
    for _ in range(rounds):
        ctx.send((ctx.pid + 1) % ctx.nprocs, payload=1)
        yield
        total += len(ctx.receive())
    return total


class TestFaultPlanValidation:
    def test_rates_validated(self):
        for field in ("drop_rate", "duplicate_rate", "reorder_rate", "corrupt_rate"):
            with pytest.raises(ValueError, match=field):
                FaultPlan(**{field: 1.5})
            with pytest.raises(ValueError, match=field):
                FaultPlan(**{field: -0.1})

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            StallSpec(pid=-1, start=0)
        with pytest.raises(ValueError):
            CrashSpec(pid=0, start=0, duration=0)

    def test_null_plan(self):
        assert FaultPlan().is_null
        assert not FaultPlan(drop_rate=0.1).is_null
        assert not FaultPlan(stalls=(StallSpec(pid=0, start=0),)).is_null

    def test_lists_canonicalized_to_tuples(self):
        plan = FaultPlan(stalls=[StallSpec(pid=0, start=0)])
        assert isinstance(plan.stalls, tuple)


class TestCorruption:
    def test_is_corrupted(self):
        assert is_corrupted(CorruptedPayload("x"))
        assert is_corrupted(-3)
        assert is_corrupted(np.int64(-1))
        assert not is_corrupted(0)
        assert not is_corrupted(7)
        assert not is_corrupted("x")

    def test_integer_columns_bitflipped_negative(self):
        # ~x < 0 for every x >= 0: the transport's checksum analog
        for x in (0, 1, 2**40):
            assert ~np.int64(x) < 0


class TestBitIdenticalDisabledPath:
    """Acceptance criterion: drop-rate 0 must be bit-identical to a run
    without the fault layer — same time, costs, stats, and inboxes."""

    def test_null_plan_run_identical(self):
        base = make_machine(p=8, m=4).run(ring_program, args=(4,))
        faulted = make_machine(p=8, m=4)
        faulted.inject_faults(FaultPlan(seed=123))  # seed alone ≠ faults
        res = faulted.run(ring_program, args=(4,))
        assert res.time == base.time
        assert res.results == base.results
        assert len(res.records) == len(base.records)
        for a, b in zip(res.records, base.records):
            assert a.cost == b.cost
            assert a.stats == b.stats
            assert a.breakdown == b.breakdown

    def test_null_plan_routing_identical(self):
        rel = uniform_random_relation(16, 600, seed=1)
        sched = unbalanced_send(rel, 4, 0.2, seed=2)
        base = execute_schedule(make_machine(), sched)
        faulted = make_machine()
        faulted.inject_faults(FaultPlan())
        res = execute_schedule(faulted, sched)
        assert res.time == base.time
        for mine, ref in zip(res.results, base.results):
            assert np.array_equal(np.sort(mine), np.sort(ref))

    def test_detach_injector(self):
        mach = make_machine()
        mach.inject_faults(FaultPlan(drop_rate=0.5))
        assert mach.fault_injector is not None
        mach.inject_faults(None)
        assert mach.fault_injector is None


class TestInjectorDeterminism:
    def _batch(self, n=200, p=16, seed=0):
        rng = np.random.default_rng(seed)
        rel = uniform_random_relation(p, n, seed=int(rng.integers(1 << 30)))
        sched = unbalanced_send(rel, 4, 0.2, seed=1)
        mach = make_machine(p=p)
        return execute_schedule(mach, sched).records[0].msg_batch

    def test_same_plan_same_faults(self):
        batch = self._batch()
        plan = FaultPlan(seed=9, drop_rate=0.2, duplicate_rate=0.1)
        d1, s1 = FaultInjector(plan).apply(batch, 0, 16)
        d2, s2 = FaultInjector(plan).apply(batch, 0, 16)
        assert s1 == s2
        assert np.array_equal(d1.src, d2.src)
        assert np.array_equal(d1.dest, d2.dest)

    def test_different_seed_different_faults(self):
        batch = self._batch()
        _, s1 = FaultInjector(FaultPlan(seed=1, drop_rate=0.3)).apply(batch, 0, 16)
        _, s2 = FaultInjector(FaultPlan(seed=2, drop_rate=0.3)).apply(batch, 0, 16)
        assert s1["fault_dropped"] != s2["fault_dropped"]

    def test_monotonic_clock_gives_fresh_draws_then_reset_rewinds(self):
        batch = self._batch()
        inj = FaultInjector(FaultPlan(seed=5, drop_rate=0.3))
        _, first = inj.apply(batch, 0, 16)
        _, second = inj.apply(batch, 0, 16)  # next barrier: fresh draws
        assert first != second
        inj.reset()
        _, again = inj.apply(batch, 0, 16)
        assert again == first

    def test_ledger_balances(self):
        batch = self._batch()
        inj = FaultInjector(
            FaultPlan(seed=3, drop_rate=0.2, duplicate_rate=0.15, corrupt_rate=0.1)
        )
        delivered, stats = inj.apply(batch, 0, 16)
        assert stats["fault_delivered"] == (
            stats["fault_injected"] - stats["fault_dropped"] + stats["fault_duplicated"]
        )
        assert delivered.n == stats["fault_delivered"]
        assert inj.totals["injected"] == batch.n


class TestStallAndCrash:
    def test_stall_freezes_then_resumes(self):
        base = make_machine(p=4, m=2, L=1.0).run(ring_program, args=(3,))
        mach = make_machine(p=4, m=2, L=1.0)
        mach.inject_faults(FaultPlan(stalls=(StallSpec(pid=0, start=1, duration=2),)))
        res = mach.run(ring_program, args=(3,))
        # the stalled processor still finishes its 3 rounds...
        assert res.results[0] is not None
        # ...but the run stretches past the fault-free superstep count
        assert len(res.records) > len(base.records)

    def test_crash_drops_inbound_messages(self):
        mach = make_machine(p=4, m=2, L=1.0)
        mach.inject_faults(FaultPlan(crashes=(CrashSpec(pid=1, start=0, duration=1),)))
        res = mach.run(ring_program, args=(1,))
        # pid 0 sends to pid 1, which is down at the barrier: message dropped
        rec = res.records[0]
        assert rec.stats["fault_dropped"] >= 1.0
        # a crashed processor is frozen too, so only 3 of 4 sends happen —
        # and pricing is on the SENT batch, so all 3 are still charged
        assert rec.stats["n"] == 3.0
        # pid 1's inbound message is gone for good: it resumes to an empty inbox
        assert res.results[1] == 0

    def test_all_stalled_does_not_end_run(self):
        # freezing every processor must extend the run, not break the loop
        mach = make_machine(p=2, m=2, L=1.0)
        mach.inject_faults(FaultPlan(stalls=(
            StallSpec(pid=0, start=0, duration=1),
            StallSpec(pid=1, start=0, duration=1),
        )))
        res = mach.run(ring_program, args=(1,))
        assert res.results == [1, 1]


class TestRunAborted:
    def test_max_supersteps_carries_partial(self):
        def forever(ctx):
            while True:
                ctx.send((ctx.pid + 1) % ctx.nprocs, payload=1)
                yield

        mach = make_machine(p=2, m=2)
        with pytest.raises(RunAborted) as excinfo:
            mach.run(forever, max_supersteps=5)
        err = excinfo.value
        assert err.reason == "max_supersteps"
        assert err.superstep == 5
        assert len(err.partial.records) == 5
        assert err.partial.time > 0

    def test_max_time_watchdog(self):
        def forever(ctx):
            while True:
                yield

        mach = make_machine(p=2, m=2)
        with pytest.raises(RunAborted) as excinfo:
            mach.run(forever, max_time=0.05)
        assert excinfo.value.reason == "max_time"
        assert excinfo.value.partial.records is not None

    def test_is_a_program_error(self):
        # existing handlers that catch ProgramError keep working
        assert issubclass(RunAborted, ProgramError)


class TestDeadline:
    """Absolute ``deadline=`` on ``Machine.run`` — the serve daemon's
    per-request deadline path."""

    def test_expired_deadline_aborts_before_superstep_0(self):
        """Regression: plain-function programs execute their bodies at
        construction time, so an already-expired deadline must abort
        *before* program construction — zero supersteps, zero user code."""
        import time

        ran = []

        def prog(ctx):  # plain function: body runs eagerly when built
            ran.append(ctx.pid)

        mach = make_machine(p=2, m=2)
        with pytest.raises(RunAborted) as excinfo:
            mach.run(prog, deadline=time.monotonic() - 1.0)
        err = excinfo.value
        assert err.reason == "deadline"
        assert err.superstep == 0
        assert err.partial.records == []
        assert ran == []  # no superstep body ever executed

    def test_deadline_aborts_mid_run(self):
        import time

        def forever(ctx):
            while True:
                yield

        mach = make_machine(p=2, m=2)
        with pytest.raises(RunAborted) as excinfo:
            mach.run(forever, deadline=time.monotonic() + 0.05)
        assert excinfo.value.reason == "deadline"
        assert excinfo.value.partial.records is not None

    def test_earlier_constraint_names_the_reason(self):
        import time

        def forever(ctx):
            while True:
                yield

        mach = make_machine(p=2, m=2)
        # deadline far away, max_time close: the abort is a max_time abort
        with pytest.raises(RunAborted) as excinfo:
            mach.run(forever, max_time=0.05, deadline=time.monotonic() + 60)
        assert excinfo.value.reason == "max_time"
        # and the other way around
        with pytest.raises(RunAborted) as excinfo:
            mach.run(forever, max_time=60.0, deadline=time.monotonic() + 0.05)
        assert excinfo.value.reason == "deadline"

    def test_route_propagates_deadline(self):
        import time

        rel = uniform_random_relation(8, 400, seed=2)
        mach = make_machine(p=8, m=4)
        with pytest.raises(RunAborted) as excinfo:
            route(mach, rel, seed=0, deadline=time.monotonic() - 1.0)
        assert excinfo.value.reason == "deadline"

    def test_no_deadline_is_bit_identical(self):
        """Passing a generous deadline must not perturb the result."""
        import time

        rel = uniform_random_relation(8, 400, seed=2)
        plain, _ = route(make_machine(p=8, m=4), rel, seed=0)
        timed, _ = route(
            make_machine(p=8, m=4), rel, seed=0,
            deadline=time.monotonic() + 600,
        )
        assert plain.time == timed.time
        assert len(plain.records) == len(timed.records)


class TestAuditor:
    def test_clean_run_passes(self):
        mach = make_machine(p=8, m=4)
        res = mach.run(ring_program, args=(3,), audit=True)
        assert res.results == [3] * 8

    def test_faulted_run_passes(self):
        mach = make_machine(p=8, m=4)
        mach.inject_faults(FaultPlan(seed=1, drop_rate=0.3, duplicate_rate=0.2))
        mach.run(ring_program, args=(3,), audit=True)

    @staticmethod
    def _fake_procs(record):
        # inbox totals that satisfy flit conservation for the record's batch
        from types import SimpleNamespace

        return [SimpleNamespace(inbox=[None] * record.msg_batch.n)]

    def test_tampered_cost_detected(self):
        mach = make_machine(p=8, m=4)
        res = mach.run(ring_program, args=(1,))
        rec = res.records[0]
        rec.cost += 1.0  # break pricing purity
        with pytest.raises(AuditViolation, match="re-pricing"):
            audit_record(mach, rec, self._fake_procs(rec), None)

    def test_tampered_ledger_detected(self):
        mach = make_machine(p=8, m=4)
        mach.inject_faults(FaultPlan(seed=1, drop_rate=0.3))
        res = mach.run(ring_program, args=(1,))
        rec = res.records[0]
        assert "fault_injected" in rec.stats
        rec.stats["fault_dropped"] += 1.0
        with pytest.raises(AuditViolation, match="ledger"):
            audit_record(mach, rec, self._fake_procs(rec), None)

    def test_violation_is_assertion_error(self):
        assert issubclass(AuditViolation, AssertionError)


class TestReliableTransport:
    def test_clean_machine_single_round(self):
        mach = make_machine()
        rel = uniform_random_relation(16, 400, seed=3)
        res = reliable_route(mach, rel, seed=7, audit=True)
        assert res.rounds == 1
        assert res.exactly_once
        assert res.retried == 0 and res.dropped == 0
        assert res.time > res.fault_free_time  # the ack superstep is priced

    def test_exactly_once_under_heavy_chaos(self):
        mach = make_machine()
        mach.inject_faults(FaultPlan(
            seed=11, drop_rate=0.25, duplicate_rate=0.1,
            reorder_rate=0.2, corrupt_rate=0.1,
        ))
        rel = uniform_random_relation(16, 400, seed=3)
        res = reliable_route(mach, rel, seed=7, audit=True)
        assert res.exactly_once
        assert res.delivered == rel.n
        assert res.rounds > 1
        assert res.retried > 0
        assert res.corrupted > 0

    def test_retries_priced_against_m(self):
        """No free re-injections: summing the injected-flit stat over the
        data supersteps equals rel.n + retried."""
        mach = make_machine()
        mach.inject_faults(FaultPlan(seed=11, drop_rate=0.2, duplicate_rate=0.05))
        rel = uniform_random_relation(16, 400, seed=3)
        res = reliable_route(mach, rel, seed=7)
        data_flits = sum(
            int(rec.stats.get("n", 0))
            for run in res.data_runs
            for rec in run.records
        )
        assert data_flits == rel.n + res.retried

    def test_deterministic_under_seed(self):
        def go():
            mach = make_machine()
            mach.inject_faults(FaultPlan(seed=4, drop_rate=0.2))
            rel = uniform_random_relation(16, 300, seed=5)
            return reliable_route(mach, rel, seed=6)

        a, b = go(), go()
        assert a.time == b.time
        assert a.rounds == b.rounds
        assert a.retried == b.retried
        assert a.dropped == b.dropped

    def test_transient_crash_recovered(self):
        mach = make_machine()
        mach.inject_faults(FaultPlan(seed=1, crashes=(CrashSpec(pid=3, start=0),)))
        rel = uniform_random_relation(16, 400, seed=3)
        res = reliable_route(mach, rel, seed=7, audit=True)
        assert res.exactly_once
        assert res.dropped > 0  # the crashed processor's inbound traffic

    def test_backoff_charged_as_idle_supersteps(self):
        mach = make_machine(L=2.0)
        mach.inject_faults(FaultPlan(seed=11, drop_rate=0.3))
        rel = uniform_random_relation(16, 300, seed=3)
        res = reliable_route(mach, rel, seed=7, backoff_base=2)
        assert res.rounds > 1
        assert res.backoff_steps >= 2
        engine_time = sum(r.time for r in res.data_runs) + sum(
            r.time for r in res.ack_runs
        )
        # total time = engine supersteps + backoff at L each, exactly
        assert res.time == pytest.approx(engine_time + res.backoff_steps * 2.0)

    def test_round_zero_is_fault_free_baseline(self):
        # pricing never depends on faults, so round 0's time equals the
        # same schedule's fault-free cost and overhead > 1 under loss
        mach = make_machine()
        mach.inject_faults(FaultPlan(seed=11, drop_rate=0.2))
        rel = uniform_random_relation(16, 400, seed=3)
        res = reliable_route(mach, rel, seed=7)
        assert res.fault_free_time == res.data_runs[0].time
        assert res.overhead > 1.0

    def test_retry_budget_exhaustion_raises(self):
        mach = make_machine()
        mach.inject_faults(FaultPlan(seed=2, drop_rate=0.9))
        rel = uniform_random_relation(16, 200, seed=3)
        with pytest.raises(TransportError) as excinfo:
            reliable_route(mach, rel, seed=7, max_rounds=2)
        err = excinfo.value
        assert err.pending.size > 0
        assert err.result.rounds == 2
        assert err.result.delivered < rel.n

    def test_rejects_shared_memory_machine(self):
        from repro import QSMm

        mach = QSMm(MachineParams(p=4, m=2))
        rel = uniform_random_relation(4, 20, seed=0)
        with pytest.raises(ValueError, match="point-to-point"):
            reliable_route(mach, rel)

    def test_empty_relation(self):
        rel = uniform_random_relation(16, 0, seed=0)
        res = reliable_route(make_machine(), rel)
        assert res.n == 0 and res.rounds == 0 and res.exactly_once


class TestSchedulingIntegration:
    def test_route_reliable_reexport(self):
        mach = make_machine()
        mach.inject_faults(FaultPlan(seed=1, drop_rate=0.1))
        rel = uniform_random_relation(16, 200, seed=4)
        res = route_reliable(mach, rel, seed=5)
        assert res.exactly_once

    def test_plain_route_mismatch_mentions_reliable(self):
        mach = make_machine()
        mach.inject_faults(FaultPlan(seed=1, drop_rate=0.3))
        rel = uniform_random_relation(16, 400, seed=4)
        with pytest.raises(ValueError, match="route_reliable"):
            route(mach, rel, seed=5)

    def test_plain_route_with_null_plan_unaffected(self):
        mach = make_machine()
        mach.inject_faults(FaultPlan())
        rel = uniform_random_relation(16, 400, seed=4)
        res, _ = route(mach, rel, seed=5)
        assert res.time > 0


class TestLossyDynamicProtocol:
    def test_zero_drop_matches_algorithm_b(self):
        from repro.dynamic import (
            AlgorithmBProtocol,
            LossyAlgorithmBProtocol,
            UniformAdversary,
            run_dynamic,
        )

        params = MachineParams(p=32, m=8, L=4.0)
        trace = UniformAdversary(p=32, w=16, alpha=2.0, beta=0.5).generate(400, seed=5)
        res_b = run_dynamic(AlgorithmBProtocol(params, w=16, alpha=2.0, seed=9), trace)
        res_l = run_dynamic(
            LossyAlgorithmBProtocol(params, w=16, alpha=2.0, drop_rate=0.0, seed=9),
            trace,
        )
        assert [b.service for b in res_b.batches] == [b.service for b in res_l.batches]

    def test_loss_inflates_service_time(self):
        from repro.dynamic import LossyAlgorithmBProtocol, UniformAdversary, run_dynamic

        params = MachineParams(p=32, m=8, L=4.0)
        trace = UniformAdversary(p=32, w=16, alpha=2.0, beta=0.5).generate(400, seed=5)

        def mean_service(q):
            proto = LossyAlgorithmBProtocol(
                params, w=16, alpha=2.0, drop_rate=q, seed=9
            )
            res = run_dynamic(proto, trace)
            svc = [b.service for b in res.batches if b.n > 0]
            return float(np.mean(svc))

        assert mean_service(0.2) > mean_service(0.0)

    def test_drop_rate_validated(self):
        from repro.dynamic import LossyAlgorithmBProtocol

        params = MachineParams(p=32, m=8, L=4.0)
        with pytest.raises(ValueError, match="drop_rate"):
            LossyAlgorithmBProtocol(params, w=16, alpha=2.0, drop_rate=1.5)


class TestChaosCLI:
    def test_chaos_subcommand_runs(self, capsys, tmp_path):
        from repro.harness import main

        out = tmp_path / "chaos.json"
        code = main([
            "chaos", "uniform", "--p", "16", "--n", "300", "--m", "4",
            "--seed", "3", "--drop-rate", "0.1", "--json", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "# seed = 3" in text
        assert "exactly once" in text
        import json

        report = json.loads(out.read_text())
        assert report["exactly_once"] is True
        assert report["seed"] == 3

    def test_top_level_seed_threads_through(self, capsys):
        from repro.harness import main

        code = main([
            "--seed", "42", "chaos", "uniform",
            "--p", "8", "--n", "100", "--m", "4",
        ])
        assert code == 0
        assert "# seed = 42" in capsys.readouterr().out

    def test_chaos_sweep_aggregates_trials(self, capsys, tmp_path):
        from repro.harness import main

        out = tmp_path / "chaos_sweep.json"
        code = main([
            "chaos", "uniform", "--p", "16", "--n", "300", "--m", "4",
            "--seed", "3", "--drop-rate", "0.1",
            "--trials", "3", "--jobs", "2", "--json", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "jobs = 2  trials = 3" in text
        assert "exactly-once rate" in text
        import json

        record = json.loads(out.read_text())
        assert record["summary"]["trials"] == 3
        assert record["summary"]["failures"] == 0
        assert len(record["trials"]) == 3
        assert record["telemetry"]["jobs"] == 2

    def test_chaos_sweep_accepts_route_verify(self):
        # regression: the sweep path routes the pinned profile through
        # build_relation, which must know the "route-verify" name
        from repro.faults.chaos import build_relation

        rel = build_relation("route-verify", 32, 400, 1.2, seed=0)
        assert rel.n == 400

    def test_chaos_sweep_deterministic_across_jobs(self):
        from repro.faults.chaos import chaos_trial
        from repro.sweep import SweepSpec, run_sweep

        spec = SweepSpec(
            name="chaos", fn=chaos_trial, grid={"uniform": {}}, trials=3, seed=7,
            common=dict(
                workload="uniform", p=16, n=300, m=4, L=1.0, alpha=1.2,
                epsilon=0.2, drop_rate=0.1, duplicate_rate=0.0,
                reorder_rate=0.0, corrupt_rate=0.0, stalls=(), crashes=(),
                max_rounds=64, backoff_base=2, audit=False,
            ),
        )
        assert run_sweep(spec, jobs=2).results == run_sweep(spec, jobs=1).results
