"""Tests for rng plumbing, validation helpers, and the report renderer."""

import numpy as np
import pytest

from repro.util.reporting import Table, format_float
from repro.util.rng import as_generator, spawn_children
from repro.util.validation import (
    check_in_range,
    check_nonnegative,
    check_positive,
    check_prob,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(7).integers(0, 1000, 10)
        b = as_generator(7).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_seed_sequence(self):
        g = as_generator(np.random.SeedSequence(5))
        assert isinstance(g, np.random.Generator)

    def test_spawn_children_independent_and_reproducible(self):
        kids1 = spawn_children(42, 3)
        kids2 = spawn_children(42, 3)
        for a, b in zip(kids1, kids2):
            assert np.array_equal(a.integers(0, 100, 5), b.integers(0, 100, 5))
        draws = [g.integers(0, 2**32) for g in spawn_children(42, 3)]
        assert len(set(int(d) for d in draws)) == 3

    def test_spawn_from_generator(self):
        kids = spawn_children(np.random.default_rng(3), 4)
        assert len(kids) == 4

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_children(1, -1)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_check_nonnegative(self):
        check_nonnegative("x", 0)
        with pytest.raises(ValueError):
            check_nonnegative("x", -0.5)

    def test_check_in_range_closed(self):
        check_in_range("x", 1, 1, 2)
        check_in_range("x", 2, 1, 2)
        with pytest.raises(ValueError):
            check_in_range("x", 2.5, 1, 2)

    def test_check_in_range_open(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1, 1, 2, low_open=True)
        with pytest.raises(ValueError):
            check_in_range("x", 2, 1, 2, high_open=True)

    def test_check_prob(self):
        check_prob("p", 0.0)
        check_prob("p", 1.0)
        with pytest.raises(ValueError):
            check_prob("p", 1.01)


class TestReporting:
    def test_format_float(self):
        assert format_float(3) == "3"
        assert format_float(True) == "True"
        assert format_float(0.0) == "0"
        assert format_float(1.23456789) == "1.235"

    def test_table_rejects_bad_row(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_table_renders_aligned(self):
        t = Table(["name", "v"], title="T")
        t.add_row(["long-name", 1])
        t.add_row(["x", 123456])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "v" in lines[1]
        assert len(lines) == 5

    def test_table_str(self):
        t = Table(["a"])
        t.add_row([1])
        assert "a" in str(t)
