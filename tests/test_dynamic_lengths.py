"""Tests for the variable-length dynamic extension."""

import numpy as np
import pytest

from repro import MachineParams
from repro.dynamic import (
    AlgorithmBProtocol,
    SingleTargetAdversary,
    UniformAdversary,
    VariableLengthAdversary,
    run_dynamic,
)
from repro.dynamic.adversary import ArrivalTrace
from repro.scheduling import unbalanced_send_long


class TestArrivalTraceLengths:
    def test_default_unit_lengths(self):
        trace = SingleTargetAdversary(8, 16, beta=0.5).generate(1000, seed=0)
        assert trace.flits == trace.n

    def test_explicit_lengths(self):
        trace = ArrivalTrace(
            p=4,
            horizon=10,
            t=np.array([1, 2]),
            src=np.array([0, 1]),
            dest=np.array([1, 2]),
            length=np.array([3, 5]),
        )
        assert trace.flits == 8

    def test_length_shape_checked(self):
        with pytest.raises(ValueError):
            ArrivalTrace(
                p=4, horizon=10,
                t=np.array([1]), src=np.array([0]), dest=np.array([1]),
                length=np.array([1, 2]),
            )

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            ArrivalTrace(
                p=4, horizon=10,
                t=np.array([1]), src=np.array([0]), dest=np.array([1]),
                length=np.array([0]),
            )

    def test_window_slices_lengths(self):
        trace = ArrivalTrace(
            p=4, horizon=10,
            t=np.array([1, 5, 8]), src=np.array([0, 1, 2]),
            dest=np.array([1, 2, 3]), length=np.array([2, 4, 6]),
        )
        sub = trace.window(4, 9)
        assert sub.flits == 10


class TestVariableLengthAdversary:
    def test_mean_length(self):
        adv = VariableLengthAdversary(
            UniformAdversary(64, 32, alpha=2.0, beta=2.0), mean_length=6.0
        )
        trace = adv.generate(20_000, seed=1)
        assert trace.flits / trace.n == pytest.approx(6.0, rel=0.1)

    def test_reproducible(self):
        adv = VariableLengthAdversary(SingleTargetAdversary(16, 32, beta=0.5), 4.0)
        a = adv.generate(2000, seed=2)
        b = adv.generate(2000, seed=2)
        assert np.array_equal(a.length, b.length)

    def test_bad_mean_rejected(self):
        with pytest.raises(ValueError):
            VariableLengthAdversary(SingleTargetAdversary(8, 16, beta=0.5), 0.0)


class TestLongMessageDynamic:
    def test_algorithm_b_with_long_sender_stable(self):
        p, m, w = 128, 32, 256
        _, global_ = MachineParams.matched_pair(p=p, m=m, L=4)
        # flit rate per source must stay below 1 (a processor injects at
        # most one flit per step): 0.25 msgs/step * mean 2 = 0.5 flits/step
        beta = 0.25
        adv = VariableLengthAdversary(
            SingleTargetAdversary(p, w, beta=beta), mean_length=2.0
        )
        trace = adv.generate(30_000, seed=3)
        proto = AlgorithmBProtocol(
            global_, w, alpha=beta * 2.0, epsilon=0.3, seed=4,
            sender=unbalanced_send_long,
        )
        res = run_dynamic(proto, trace)
        assert res.is_stable()

    def test_flit_volume_drives_instability(self):
        """Same message rate, longer messages: past alpha_flits = m the
        system must sink."""
        p, m, w = 128, 8, 256
        _, global_ = MachineParams.matched_pair(p=p, m=m, L=4)
        msg_rate = 2.0
        adv = VariableLengthAdversary(
            UniformAdversary(p, w, alpha=msg_rate, beta=msg_rate), mean_length=16.0
        )  # flit rate ~ 32 > m = 8
        trace = adv.generate(30_000, seed=5)
        proto = AlgorithmBProtocol(
            global_, w, alpha=msg_rate * 16.0, epsilon=0.3, seed=6,
            sender=unbalanced_send_long,
        )
        res = run_dynamic(proto, trace)
        assert not res.is_stable()
