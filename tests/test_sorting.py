"""Tests for columnsort (Table 1 row 5), reference and engine program."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BSPg, BSPm, MachineParams
from repro.algorithms import choose_columns, columnsort, columnsort_reference
from repro.algorithms.sorting import local_sort_work
from repro.util.intmath import ceil_div


class TestChooseColumns:
    def test_leighton_conditions(self):
        for n in (64, 512, 4096, 100_000):
            for limit in (2, 8, 64):
                r, s = choose_columns(n, limit)
                assert r * s >= n
                assert s <= max(1, limit)
                if s > 1:
                    assert r % s == 0
                    assert r >= 2 * (s - 1) ** 2

    def test_tiny_n(self):
        r, s = choose_columns(3, 8)
        assert s >= 1 and r * s >= 3

    def test_no_limit(self):
        r, s = choose_columns(10_000, None)
        assert s > 1


class TestReference:
    @pytest.mark.parametrize("n,s", [(128, 4), (512, 4), (2048, 8)])
    def test_sorts(self, n, s):
        rng = np.random.default_rng(n)
        keys = rng.random(n)
        r = s * ceil_div(n, s * s)
        out = columnsort_reference(keys, r, s)
        assert np.array_equal(out, np.sort(keys))

    def test_with_padding(self):
        rng = np.random.default_rng(0)
        keys = rng.random(100)  # r*s = 128 > 100
        out = columnsort_reference(keys, 32, 4)
        assert np.array_equal(out, np.sort(keys))

    def test_duplicates(self):
        keys = np.array([3.0, 1.0, 3.0, 1.0] * 32)
        out = columnsort_reference(keys, 32, 4)
        assert np.array_equal(out, np.sort(keys))

    def test_condition_violations_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            columnsort_reference(np.ones(100), 4, 4)
        with pytest.raises(ValueError, match="s \\| r"):
            columnsort_reference(np.ones(30), 10, 3)
        with pytest.raises(ValueError, match="2\\(s-1\\)"):
            columnsort_reference(np.ones(64), 16, 4)  # 16 < 2*9

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_random_keys(self, seed):
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=512)
        out = columnsort_reference(keys, 128, 4)
        assert np.array_equal(out, np.sort(keys))


class TestEngineColumnsort:
    @pytest.mark.parametrize("n", [64, 500, 1024])
    def test_sorts_on_bspm(self, n):
        rng = np.random.default_rng(n)
        keys = rng.random(n)
        mach = BSPm(MachineParams(p=64, m=8, L=2))
        res, out = columnsort(mach, keys)
        assert np.array_equal(out, np.sort(keys))

    def test_sorts_on_bspg(self):
        rng = np.random.default_rng(1)
        keys = rng.random(512)
        mach = BSPg(MachineParams(p=64, g=8.0, L=2))
        res, out = columnsort(mach, keys)
        assert np.array_equal(out, np.sort(keys))

    def test_no_overload_on_bspm(self):
        rng = np.random.default_rng(2)
        keys = rng.random(1024)
        mach = BSPm(MachineParams(p=64, m=8, L=2))
        res, out = columnsort(mach, keys)
        assert res.stat_max("overloaded_slots") == 0

    def test_degenerate_single_column(self):
        keys = np.array([3.0, 1.0, 2.0])
        mach = BSPm(MachineParams(p=4, m=1, L=1))
        res, out = columnsort(mach, keys, columns=1)
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_m_model_comm_beats_g_model(self):
        """The Θ(g) separation on the communication term."""
        n, p, m = 2048, 128, 8
        g = p / m
        rng = np.random.default_rng(3)
        keys = rng.random(n)
        local, global_ = MachineParams.matched_pair(p=p, m=m, L=2)
        res_g, _ = columnsort(BSPg(local), keys)
        res_m, _ = columnsort(BSPm(global_), keys)
        comm_g = sum(r.breakdown.local_band for r in res_g.records)
        comm_m = sum(
            max(r.breakdown.local_band, r.breakdown.global_band) for r in res_m.records
        )
        assert comm_g / comm_m >= 0.5 * g

    def test_rejects_infinite_keys(self):
        mach = BSPm(MachineParams(p=8, m=2))
        with pytest.raises(ValueError, match="finite"):
            columnsort(mach, np.array([1.0, np.inf]))

    def test_qsm_machines_supported(self):
        from repro import QSMm

        mach = QSMm(MachineParams(p=16, m=4))
        rng = np.random.default_rng(4)
        keys = rng.random(64)
        res, out = columnsort(mach, keys)
        assert np.array_equal(out, np.sort(keys))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(10, 400))
    def test_property_engine_sorts(self, seed, n):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 50, size=n).astype(float)  # many duplicates
        mach = BSPm(MachineParams(p=32, m=4, L=1))
        res, out = columnsort(mach, keys)
        assert np.array_equal(out, np.sort(keys))


class TestLocalSortWork:
    def test_zero(self):
        assert local_sort_work(0) == 0.0

    def test_small(self):
        assert local_sort_work(1) == 1.0

    def test_nlogn(self):
        assert local_sort_work(1024) == pytest.approx(1024 * 10)
