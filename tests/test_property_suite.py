"""Cross-cutting property suite: invariants that must hold across module
boundaries for arbitrary inputs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EXPONENTIAL, LINEAR
from repro.scheduling import (
    evaluate_schedule,
    grouped_schedule,
    naive_schedule,
    offline_lower_bound,
    offline_optimal_schedule,
    unbalanced_consecutive_send,
    unbalanced_granular_send,
    unbalanced_send,
)
from repro.workloads import uniform_random_relation, variable_length_relation

SENDERS = [
    lambda rel, m, seed: unbalanced_send(rel, m, 0.25, seed=seed),
    lambda rel, m, seed: unbalanced_consecutive_send(rel, m, 0.25, seed=seed),
    lambda rel, m, seed: unbalanced_granular_send(rel, m, 4.0, seed=seed),
    lambda rel, m, seed: offline_optimal_schedule(rel, m),
    lambda rel, m, seed: grouped_schedule(rel, m),
    lambda rel, m, seed: naive_schedule(rel),
]


@settings(max_examples=20, deadline=None)
@given(
    p=st.integers(2, 32),
    n=st.integers(1, 500),
    m=st.integers(1, 32),
    seed=st.integers(0, 5000),
    which=st.integers(0, len(SENDERS) - 1),
)
def test_no_schedule_beats_the_offline_lower_bound(p, n, m, seed, which):
    """Even under the *minimum admissible* (linear) charge, no schedule in
    the library beats ``max(n/m, x̄)`` — overloading trades span for
    penalty, never below the bandwidth bound."""
    rel = uniform_random_relation(p, n, seed=seed)
    sched = SENDERS[which](rel, m, seed)
    sched.check_valid()
    rep = evaluate_schedule(sched, m=m, penalty=LINEAR)
    assert rep.comm_time >= max(rel.n / m, rel.x_bar) - 1e-9
    # and bandwidth-respecting schedules meet the span bound too
    if rep.max_slot_load <= m:
        assert sched.span >= offline_lower_bound(rel, m)


@settings(max_examples=20, deadline=None)
@given(
    p=st.integers(2, 24),
    n=st.integers(1, 300),
    m=st.integers(1, 16),
    seed=st.integers(0, 5000),
)
def test_linear_charge_never_exceeds_exponential(p, n, m, seed):
    rel = uniform_random_relation(p, n, seed=seed)
    sched = naive_schedule(rel)
    lin = evaluate_schedule(sched, m=m, penalty=LINEAR)
    exp = evaluate_schedule(sched, m=m, penalty=EXPONENTIAL)
    assert lin.comm_time <= exp.comm_time + 1e-9
    # and both dominate the span (idle slots still elapse)
    assert lin.comm_time >= sched.span - 1e-9


@settings(max_examples=20, deadline=None)
@given(
    p=st.integers(2, 24),
    n=st.integers(1, 300),
    seed=st.integers(0, 5000),
    m_small=st.integers(1, 8),
    extra=st.integers(1, 32),
)
def test_more_bandwidth_never_hurts_a_fixed_schedule(p, n, seed, m_small, extra):
    """For a fixed schedule, increasing m can only decrease the charge."""
    rel = uniform_random_relation(p, n, seed=seed)
    sched = naive_schedule(rel)
    small = evaluate_schedule(sched, m=m_small)
    big = evaluate_schedule(sched, m=m_small + extra)
    assert big.comm_time <= small.comm_time + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    p=st.integers(2, 16),
    nm=st.integers(1, 150),
    m=st.integers(1, 12),
    seed=st.integers(0, 5000),
    tau=st.floats(0, 100),
)
def test_tau_is_purely_additive(p, nm, m, seed, tau):
    rel = variable_length_relation(p, nm, mean_length=3, seed=seed)
    sched = unbalanced_send(rel, m, 0.25, seed=seed)
    base = evaluate_schedule(sched, m=m)
    with_tau = evaluate_schedule(sched, m=m, tau=tau)
    assert with_tau.completion_time == pytest.approx(base.completion_time + tau)
    assert with_tau.superstep_cost == base.superstep_cost


@settings(max_examples=15, deadline=None)
@given(
    p=st.integers(2, 16),
    n=st.integers(1, 200),
    m=st.integers(1, 12),
    seed=st.integers(0, 5000),
)
def test_schedule_histogram_conserves_flits(p, n, m, seed):
    rel = uniform_random_relation(p, n, seed=seed)
    for make in (unbalanced_send, unbalanced_consecutive_send):
        sched = make(rel, m, 0.25, seed=seed)
        assert int(sched.slot_counts().sum()) == rel.n


@settings(max_examples=15, deadline=None)
@given(
    p=st.integers(2, 16),
    n=st.integers(0, 200),
    seed=st.integers(0, 5000),
    m=st.integers(1, 12),
)
def test_report_internal_consistency(p, n, seed, m):
    rel = uniform_random_relation(p, n, seed=seed)
    rep = evaluate_schedule(unbalanced_send(rel, m, 0.25, seed=seed), m=m, L=2.0)
    assert rep.superstep_cost >= max(rep.x_bar, rep.y_bar, 2.0) - 1e-9
    assert rep.completion_time >= rep.superstep_cost
    assert rep.optimal_time <= rep.completion_time + 1e-9 or rep.n == 0
    assert rep.span <= rep.comm_time + 1e-9
